//! Job-source decompositions of the figure sweeps.
//!
//! Each supported figure is decomposed into the finest-grained tasks whose
//! results the `noc-jobs` store can record independently — one grid point
//! for the per-point sweeps, one (grid point × strategy) charge for the
//! strategy matrix.  Task results are the exact JSON fragments the direct
//! figure binaries serialize, and `assemble` splices the recorded fragments
//! verbatim, so an artifact produced through the job store is
//! byte-identical to one produced by an uninterrupted direct run — resumed
//! or not, cached or not (pinned by `tests/job_resume.rs`).
//!
//! [`run_resumed`] is the `--resume <dir>` mode every figure binary gains
//! from the shared [`FigureCli`]: the sweep
//! routes through a [`JobStore`] in the given directory, so a killed binary
//! restarted with the same flags finishes only the missing tasks.

use crate::{
    artifact::FigureCli, fault_strategy_point, power_comparison, sim_strategy_point,
    simulate_before_after, sweeps, vc_overhead_sweep, FAULT_STRATEGIES, SIM_INJECTION_GAPS,
    SIM_STRATEGY_POLICIES, STRATEGY_MATRIX_NAMES,
};
use noc_flow::json::{write_atomic, Artifact, JsonValue, ObjectWriter, RawJson, ToJson};
use noc_flow::{
    CycleBreaking, DeadlockStrategy, EscapeChannel, FlowSweep, PreparedPoint, RecoveryReconfig,
    ResourceOrdering,
};
use noc_jobs::{AssembleContext, JobError, JobRequest, JobRunner, JobSource, JobStore};
use noc_topology::benchmarks::Benchmark;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Optional shared task-call counter, bumped at the top of every
/// `run_task` — what lets the cache tests assert *zero recomputation*
/// rather than merely "the stats said so".
pub type TaskCounter = Option<Arc<AtomicUsize>>;

fn bump(counter: &TaskCounter) {
    if let Some(counter) = counter {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Builds the job source for `spec` — the figure name picks the
/// decomposition, `spec.params` narrows the grid (for tests and partial
/// sweeps; empty params mean the figure's full published grid).
///
/// The timing and aggregate-only figures (`summary_table`,
/// `cdg_incremental`, `fig_conservatism`, `fig_scale`) return
/// [`JobError::Unsupported`]: their results are wall-clock measurements or
/// whole-population aggregates, not independently recordable tasks.
pub fn job_source(spec: &JobRequest) -> Result<Box<dyn JobSource>, JobError> {
    job_source_counted(spec, None)
}

/// [`job_source`] with a shared call counter wired into every task.
pub fn job_source_counted(
    spec: &JobRequest,
    counter: TaskCounter,
) -> Result<Box<dyn JobSource>, JobError> {
    let params = Params::parse(&spec.params)?;
    match spec.figure.as_str() {
        "fig8_d26_media" => Ok(Box::new(VcSweepSource::build(
            "fig8_d26_media",
            Benchmark::D26Media,
            params.counts_or(sweeps::FIG8_SWITCH_COUNTS)?,
            counter,
        ))),
        "fig9_d36_8" => Ok(Box::new(VcSweepSource::build(
            "fig9_d36_8",
            Benchmark::D36x8,
            params.counts_or(sweeps::FIG9_SWITCH_COUNTS)?,
            counter,
        ))),
        "fig10_power" => Ok(Box::new(PowerSource::build(&params, counter)?)),
        "sim_validation" => Ok(Box::new(SimValidationSource::build(&params, counter)?)),
        "fig_strategy_matrix" => Ok(Box::new(MatrixSource::new(&params, counter)?)),
        "fig_sim_strategies" => Ok(Box::new(SimStrategiesSource::build(&params, counter)?)),
        "fig_faults" => Ok(Box::new(FaultsSource::build(&params, counter)?)),
        figure @ ("summary_table" | "cdg_incremental" | "fig_conservatism" | "fig_scale") => {
            Err(JobError::Unsupported(figure.to_string()))
        }
        other => Err(JobError::UnknownFigure(other.to_string())),
    }
}

/// The recognised job parameters, all optional: `benchmarks` (array of
/// paper names like `"D26_media"`) and `switch_counts` / `switch_count`
/// narrow the grid of any figure to a sub-sweep.
struct Params {
    benchmarks: Option<Vec<Benchmark>>,
    switch_counts: Option<Vec<usize>>,
    switch_count: Option<usize>,
}

impl Params {
    fn parse(params: &JsonValue) -> Result<Params, JobError> {
        let JsonValue::Object(fields) = params else {
            return Err(JobError::Spec("\"params\" must be an object".into()));
        };
        let mut parsed = Params {
            benchmarks: None,
            switch_counts: None,
            switch_count: None,
        };
        for (key, value) in fields {
            match key.as_str() {
                "benchmarks" => parsed.benchmarks = Some(parse_benchmarks(value)?),
                "switch_counts" => parsed.switch_counts = Some(parse_counts(value)?),
                "switch_count" => parsed.switch_count = Some(parse_count(value)?),
                other => {
                    return Err(JobError::Spec(format!("unknown parameter {other:?}")));
                }
            }
        }
        Ok(parsed)
    }

    fn counts_or(&self, default: impl IntoIterator<Item = usize>) -> Result<Vec<usize>, JobError> {
        if self.benchmarks.is_some() || self.switch_count.is_some() {
            return Err(JobError::Spec(
                "this figure only accepts \"switch_counts\"".into(),
            ));
        }
        Ok(self
            .switch_counts
            .clone()
            .unwrap_or_else(|| default.into_iter().collect()))
    }
}

fn parse_benchmarks(value: &JsonValue) -> Result<Vec<Benchmark>, JobError> {
    let items = value
        .as_array()
        .ok_or_else(|| JobError::Spec("\"benchmarks\" must be an array of names".into()))?;
    items
        .iter()
        .map(|item| {
            let name = item
                .as_str()
                .ok_or_else(|| JobError::Spec("benchmark names must be strings".into()))?;
            Benchmark::ALL
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| JobError::Spec(format!("unknown benchmark {name:?}")))
        })
        .collect()
}

fn parse_count(value: &JsonValue) -> Result<usize, JobError> {
    match value {
        JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        _ => Err(JobError::Spec(
            "switch counts must be non-negative integers".into(),
        )),
    }
}

fn parse_counts(value: &JsonValue) -> Result<Vec<usize>, JobError> {
    let items = value
        .as_array()
        .ok_or_else(|| JobError::Spec("\"switch_counts\" must be an array".into()))?;
    items.iter().map(parse_count).collect()
}

/// The feasible (benchmark × switch count) grid of one sweep segment, in
/// sweep order, via the same filter [`FlowSweep`] itself applies.
fn segment_grid(benchmark: Benchmark, counts: &[usize]) -> Vec<(Benchmark, usize)> {
    FlowSweep::new()
        .benchmark(benchmark)
        .switch_counts(counts.iter().copied())
        .grid_points()
}

/// The Figure 8 (D26_media) followed by Figure 9 (D36_8) grid the matrix,
/// simulation, and fault sweeps all run — or, with params, the requested
/// benchmarks each over the requested counts.
fn fig89_grid(params: &Params) -> Result<Vec<(Benchmark, usize)>, JobError> {
    if params.switch_count.is_some() {
        return Err(JobError::Spec(
            "this figure only accepts \"benchmarks\" and \"switch_counts\"".into(),
        ));
    }
    match (&params.benchmarks, &params.switch_counts) {
        (None, None) => {
            let mut grid = segment_grid(
                Benchmark::D26Media,
                &sweeps::FIG8_SWITCH_COUNTS.collect::<Vec<_>>(),
            );
            grid.extend(segment_grid(
                Benchmark::D36x8,
                &sweeps::FIG9_SWITCH_COUNTS.collect::<Vec<_>>(),
            ));
            Ok(grid)
        }
        (Some(benchmarks), Some(counts)) => Ok(benchmarks
            .iter()
            .flat_map(|&b| segment_grid(b, counts))
            .collect()),
        _ => Err(JobError::Spec(
            "\"benchmarks\" and \"switch_counts\" must be given together".into(),
        )),
    }
}

/// Renders a JSON array from raw single-task results, verbatim.
fn splice_array(results: &[String]) -> String {
    format!("[{}]", results.join(","))
}

/// One grid-point-per-task source over a closure — shared shape of the
/// fig8/fig9, power, validation, simulation, and fault sweeps, which all
/// differ only in their grid and their per-point computation.
struct PointSource<F: Fn(Benchmark, usize) -> String + Sync> {
    figure: &'static str,
    grid: Vec<(Benchmark, usize)>,
    point: F,
    counter: TaskCounter,
    assemble: fn(&AssembleContext<'_>) -> String,
}

impl<F: Fn(Benchmark, usize) -> String + Sync> JobSource for PointSource<F> {
    fn figure(&self) -> &str {
        self.figure
    }

    fn task_count(&self) -> usize {
        self.grid.len()
    }

    fn task_label(&self, index: usize) -> String {
        let (benchmark, switch_count) = self.grid[index];
        format!("{benchmark} @ {switch_count} switches")
    }

    fn run_task(&self, index: usize) -> Result<String, JobError> {
        bump(&self.counter);
        let (benchmark, switch_count) = self.grid[index];
        Ok((self.point)(benchmark, switch_count))
    }

    fn assemble(&self, ctx: &AssembleContext<'_>) -> Result<String, JobError> {
        Ok((self.assemble)(ctx))
    }
}

/// Plain array payload: `"data": [<point>, ...]`.
fn assemble_plain(ctx: &AssembleContext<'_>) -> String {
    Artifact::new(ctx.figure, &RawJson(&splice_array(ctx.results))).render()
}

struct VcSweepSource;

impl VcSweepSource {
    fn build(
        figure: &'static str,
        benchmark: Benchmark,
        counts: Vec<usize>,
        counter: TaskCounter,
    ) -> impl JobSource {
        PointSource {
            figure,
            grid: segment_grid(benchmark, &counts),
            point: |benchmark, switch_count| {
                let point = vc_overhead_sweep(benchmark, [switch_count])
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| {
                        panic!("grid point {benchmark}/{switch_count} was pre-filtered feasible")
                    });
                point.to_json()
            },
            counter,
            assemble: assemble_plain,
        }
    }
}

struct PowerSource;

impl PowerSource {
    fn build(params: &Params, counter: TaskCounter) -> Result<impl JobSource, JobError> {
        if params.switch_counts.is_some() {
            return Err(JobError::Spec(
                "fig10_power takes a single \"switch_count\"".into(),
            ));
        }
        let switch_count = params.switch_count.unwrap_or(sweeps::FIG10_SWITCHES);
        let benchmarks = params
            .benchmarks
            .clone()
            .unwrap_or_else(|| Benchmark::ALL.to_vec());
        let grid = FlowSweep::new()
            .benchmarks(benchmarks)
            .switch_counts([switch_count])
            .grid_points();
        Ok(PointSource {
            figure: "fig10_power",
            grid,
            point: |benchmark, switch_count| power_comparison(benchmark, switch_count).to_json(),
            counter,
            assemble: assemble_plain,
        })
    }
}

struct SimValidationSource;

impl SimValidationSource {
    fn build(params: &Params, counter: TaskCounter) -> Result<impl JobSource, JobError> {
        if params.switch_counts.is_some() {
            return Err(JobError::Spec(
                "sim_validation takes a single \"switch_count\"".into(),
            ));
        }
        let switch_count = params.switch_count.unwrap_or(sweeps::SIM_SWITCHES);
        let benchmarks = params
            .benchmarks
            .clone()
            .unwrap_or_else(|| Benchmark::ALL.to_vec());
        // Deliberately unfiltered, like `simulate_before_after_all`: the
        // validation sweep runs every benchmark, feasible or not (all six
        // are, at the published switch count).
        let grid = benchmarks.into_iter().map(|b| (b, switch_count)).collect();
        Ok(PointSource {
            figure: "sim_validation",
            grid,
            point: |benchmark, switch_count| {
                simulate_before_after(benchmark, switch_count).to_json()
            },
            counter,
            assemble: assemble_plain,
        })
    }
}

struct SimStrategiesSource;

impl SimStrategiesSource {
    fn build(params: &Params, counter: TaskCounter) -> Result<impl JobSource, JobError> {
        Ok(PointSource {
            figure: "fig_sim_strategies",
            grid: fig89_grid(params)?,
            point: |benchmark, switch_count| sim_strategy_point(benchmark, switch_count).to_json(),
            counter,
            assemble: |ctx| {
                let gaps: Vec<usize> = SIM_INJECTION_GAPS.iter().map(|&g| g as usize).collect();
                let policies = SIM_STRATEGY_POLICIES.map(str::to_string).to_vec();
                let mut payload = String::new();
                ObjectWriter::new(&mut payload)
                    .field("injection_gaps", &gaps)
                    .field("policies", &policies)
                    .field("points", &RawJson(&splice_array(ctx.results)))
                    .finish();
                Artifact::new(ctx.figure, &RawJson(&payload)).render()
            },
        })
    }
}

struct FaultsSource;

impl FaultsSource {
    fn build(params: &Params, counter: TaskCounter) -> Result<impl JobSource, JobError> {
        Ok(PointSource {
            figure: "fig_faults",
            grid: fig89_grid(params)?,
            point: |benchmark, switch_count| {
                fault_strategy_point(benchmark, switch_count).to_json()
            },
            counter,
            assemble: |ctx| {
                let strategies = FAULT_STRATEGIES.map(str::to_string).to_vec();
                // The direct binary reports sweep wall time; through the
                // store, total recorded task time is the honest equivalent
                // (and survives resumption).
                let wall_ms = ctx.task_ms_total as f64;
                let mut payload = String::new();
                ObjectWriter::new(&mut payload)
                    .field("strategies", &strategies)
                    .field("wall_ms", &wall_ms)
                    .field("points", &RawJson(&splice_array(ctx.results)))
                    .finish();
                Artifact::new(ctx.figure, &RawJson(&payload)).render()
            },
        })
    }
}

/// The marker separating a matrix task's point metadata from its strategy
/// outcome.  The metadata keys are fixed (`benchmark` ... `original_area_um2`)
/// and benchmark names contain no quotes, so the first occurrence is
/// always the real field.
const OUTCOME_MARKER: &str = ",\"outcome\":";

/// The strategy-matrix source: one task per (grid point × strategy), the
/// finest grain the sweep decomposes into.  The expensive per-point
/// preparation (synthesis, routing, estimation) is shared between the four
/// strategy tasks of a point through lazily filled once-slots.
struct MatrixSource {
    sweep: FlowSweep,
    grid: Vec<(Benchmark, usize)>,
    prepared: Vec<Mutex<Option<Arc<PreparedPoint>>>>,
    counter: TaskCounter,
}

/// The four matrix strategies, by column index, freshly built per task
/// (construction is trivially cheap; sharing them would force `Sync`
/// bounds the trait objects do not carry).
fn matrix_strategy(column: usize) -> Box<dyn DeadlockStrategy> {
    match column {
        0 => Box::new(CycleBreaking::default()),
        1 => Box::new(ResourceOrdering),
        2 => Box::new(EscapeChannel::default()),
        _ => Box::new(RecoveryReconfig::default()),
    }
}

impl MatrixSource {
    fn new(params: &Params, counter: TaskCounter) -> Result<MatrixSource, JobError> {
        let grid = fig89_grid(params)?;
        let prepared = grid.iter().map(|_| Mutex::new(None)).collect();
        Ok(MatrixSource {
            // The exact configuration of `strategy_matrix_sweep` — what
            // makes job-path points byte-identical to the direct binary's.
            sweep: FlowSweep::new().power_estimates(false).certify(true),
            grid,
            prepared,
            counter,
        })
    }

    fn prepared_point(&self, index: usize) -> Result<Arc<PreparedPoint>, JobError> {
        let mut slot = self.prepared[index]
            .lock()
            .expect("preparation does not panic");
        if let Some(prepared) = slot.as_ref() {
            return Ok(Arc::clone(prepared));
        }
        let (benchmark, switch_count) = self.grid[index];
        let prepared = Arc::new(self.sweep.prepare(benchmark, switch_count)?);
        *slot = Some(Arc::clone(&prepared));
        Ok(prepared)
    }
}

impl JobSource for MatrixSource {
    fn figure(&self) -> &str {
        "fig_strategy_matrix"
    }

    fn task_count(&self) -> usize {
        self.grid.len() * STRATEGY_MATRIX_NAMES.len()
    }

    fn task_label(&self, index: usize) -> String {
        let (benchmark, switch_count) = self.grid[index / STRATEGY_MATRIX_NAMES.len()];
        let strategy = STRATEGY_MATRIX_NAMES[index % STRATEGY_MATRIX_NAMES.len()];
        format!("{benchmark} @ {switch_count} switches × {strategy}")
    }

    fn run_task(&self, index: usize) -> Result<String, JobError> {
        bump(&self.counter);
        let prepared = self.prepared_point(index / STRATEGY_MATRIX_NAMES.len())?;
        let strategy = matrix_strategy(index % STRATEGY_MATRIX_NAMES.len());
        let outcome = self.sweep.charge(&prepared, strategy.as_ref())?;
        // Point metadata + this strategy's outcome, rendered with the same
        // writers as a direct `SweepPoint`, so `assemble` can splice the
        // recorded fragments back into byte-identical points.
        let mut out = prepared.assemble(Vec::new()).to_json();
        let trimmed = out.len() - ",\"outcomes\":[]}".len();
        debug_assert!(out.ends_with(",\"outcomes\":[]}"));
        out.truncate(trimmed);
        out.push_str(OUTCOME_MARKER);
        outcome.write_json(&mut out);
        out.push('}');
        Ok(out)
    }

    fn assemble(&self, ctx: &AssembleContext<'_>) -> Result<String, JobError> {
        let columns = STRATEGY_MATRIX_NAMES.len();
        let mut points = String::new();
        for (i, row) in ctx.results.chunks(columns).enumerate() {
            let cut = |result: &'_ String| {
                result.find(OUTCOME_MARKER).ok_or_else(|| {
                    JobError::Spec(format!("matrix task record {i} has no outcome field"))
                })
            };
            if i > 0 {
                points.push(',');
            }
            points.push_str(&row[0][..cut(&row[0])?]);
            points.push_str(",\"outcomes\":[");
            for (column, result) in row.iter().enumerate() {
                if column > 0 {
                    points.push(',');
                }
                let outcome = &result[cut(result)? + OUTCOME_MARKER.len()..result.len() - 1];
                points.push_str(outcome);
            }
            points.push_str("]}");
        }
        let strategies = STRATEGY_MATRIX_NAMES.map(str::to_string).to_vec();
        let mut payload = String::new();
        ObjectWriter::new(&mut payload)
            .field("strategies", &strategies)
            .field("points", &RawJson(&format!("[{points}]")))
            .finish();
        Ok(Artifact::new(ctx.figure, &RawJson(&payload)).render())
    }
}

/// The `--resume <dir>` mode of the figure binaries: routes the sweep
/// through a [`JobStore`] in `dir` so a killed run restarted with the same
/// flags finishes only the missing tasks.  Returns `false` when the CLI
/// did not ask for resumption (the binary runs its direct path); on any
/// job error the process exits non-zero with the typed message.
pub fn run_resumed(cli: &FigureCli) -> bool {
    let Some(dir) = cli.resume.clone() else {
        return false;
    };
    let mut spec = JobRequest::new(cli.figure.clone());
    spec.id = cli.figure.clone();
    spec.threads = cli.threads;
    if let Err(error) = run_resume_inner(cli, &dir, spec) {
        eprintln!("{}: {error}", cli.figure);
        std::process::exit(1);
    }
    true
}

fn run_resume_inner(
    cli: &FigureCli,
    dir: &std::path::Path,
    spec: JobRequest,
) -> Result<(), JobError> {
    let source = job_source(&spec)?;
    let mut runner = JobRunner::new(JobStore::open(dir, spec)?);
    let report = runner.run(source.as_ref())?;
    let stats = &report.stats;
    eprintln!(
        "job {}: {} tasks — {} computed, {} resumed, {} cache hits",
        cli.figure, stats.total, stats.computed, stats.resumed, stats.cache_hits
    );
    let artifact = report.artifact.expect("unbounded runs always assemble");
    if let Some(path) = cli.artifact_path() {
        write_atomic(&path, artifact.text.as_bytes()).map_err(|e| JobError::io(&path, e))?;
        eprintln!("wrote {}", path.display());
    } else {
        eprintln!("artifact committed at {}", artifact.path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(figure: &str, params: &str) -> JobRequest {
        JobRequest::from_json(&format!("{{\"figure\":\"{figure}\",\"params\":{params}}}"))
            .expect("valid spec")
    }

    #[test]
    fn registry_covers_every_figure() {
        for figure in [
            "fig8_d26_media",
            "fig9_d36_8",
            "fig10_power",
            "sim_validation",
            "fig_strategy_matrix",
            "fig_sim_strategies",
            "fig_faults",
        ] {
            let source = job_source(&JobRequest::new(figure)).expect("supported figure");
            assert_eq!(source.figure(), figure);
            assert!(source.task_count() > 0, "{figure} decomposes into tasks");
        }
        for figure in [
            "summary_table",
            "cdg_incremental",
            "fig_conservatism",
            "fig_scale",
        ] {
            assert!(matches!(
                job_source(&JobRequest::new(figure)),
                Err(JobError::Unsupported(_))
            ));
        }
        assert!(matches!(
            job_source(&JobRequest::new("fig42")),
            Err(JobError::UnknownFigure(_))
        ));
    }

    #[test]
    fn params_narrow_the_grid() {
        let spec = spec_with("fig8_d26_media", "{\"switch_counts\":[6,8]}");
        assert_eq!(job_source(&spec).unwrap().task_count(), 2);

        let spec = spec_with(
            "fig_strategy_matrix",
            "{\"benchmarks\":[\"D26_media\"],\"switch_counts\":[6]}",
        );
        assert_eq!(job_source(&spec).unwrap().task_count(), 4);

        let spec = spec_with("sim_validation", "{\"benchmarks\":[\"D36_8\"]}");
        assert_eq!(job_source(&spec).unwrap().task_count(), 1);
    }

    #[test]
    fn bad_params_are_typed_spec_errors() {
        for (figure, params) in [
            ("fig8_d26_media", "{\"benchmarks\":[\"D26_media\"]}"),
            ("fig_strategy_matrix", "{\"switch_counts\":[6]}"),
            ("fig10_power", "{\"switch_counts\":[6]}"),
            ("fig8_d26_media", "{\"frobnicate\":1}"),
            (
                "fig_faults",
                "{\"benchmarks\":[\"D27_nope\"],\"switch_counts\":[6]}",
            ),
        ] {
            assert!(
                matches!(
                    job_source(&spec_with(figure, params)),
                    Err(JobError::Spec(_))
                ),
                "{figure} with {params} must be rejected"
            );
        }
    }

    #[test]
    fn infeasible_grid_points_are_filtered_like_the_sweep() {
        // D26_media has 26 cores: 30 switches is infeasible, 0 likewise.
        let spec = spec_with("fig8_d26_media", "{\"switch_counts\":[0,6,30]}");
        assert_eq!(job_source(&spec).unwrap().task_count(), 1);
    }
}
