//! Timing comparison of the two CDG maintenance modes of the removal loop:
//! per-iteration full rebuild (the reference) versus incremental delta
//! maintenance with the dirty-region smallest-cycle search (the default).
//!
//! Runs the Figure 8 (D26_media) and Figure 9 (D36_8) sweep grids, times
//! `remove_deadlocks` in both modes on the same routed design, and asserts
//! the two produce the same outcome report on every point before trusting
//! either number.  Pass `--threads <n>` to shard the untimed
//! synthesis/routing preparation (timing itself always runs serially, one
//! mode at a time, best of three) and `--json <path>` to write the rows
//! plus aggregate speedups as a JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{attributed_removal_run, routed_benchmark, sweeps, RemovalTiming};
use noc_deadlock::removal::{remove_deadlocks, CdgMode, RemovalConfig};
use noc_flow::json::{ObjectWriter, ToJson};
use noc_routing::RouteSet;
use noc_topology::benchmarks::Benchmark;
use noc_topology::Topology;

/// Timing runs per mode per grid point; the best (minimum) is reported.
const RUNS: usize = 3;

/// One timed grid point.
struct TimingPoint {
    benchmark: Benchmark,
    switch_count: usize,
    cycles_broken: usize,
    deps_removed: usize,
    deps_added: usize,
    rebuild: RemovalTiming,
    incremental: RemovalTiming,
}

impl TimingPoint {
    fn speedup(&self) -> f64 {
        if self.incremental.wall_ms > 0.0 {
            self.rebuild.wall_ms / self.incremental.wall_ms
        } else {
            1.0
        }
    }
}

impl ToJson for TimingPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark.name())
            .field("switch_count", &self.switch_count)
            .field("cycles_broken", &self.cycles_broken)
            .field("deps_removed", &self.deps_removed)
            .field("deps_added", &self.deps_added)
            .field("rebuild_ms", &self.rebuild.wall_ms)
            .field("incremental_ms", &self.incremental.wall_ms)
            .field("rebuild_phases", &self.rebuild)
            .field("incremental_phases", &self.incremental)
            .field("speedup", &self.speedup())
            .finish();
    }
}

/// The artifact payload: per-point rows plus aggregates.
struct TimingArtifact {
    points: Vec<TimingPoint>,
    total_rebuild_ms: f64,
    total_incremental_ms: f64,
}

impl ToJson for TimingArtifact {
    fn write_json(&self, out: &mut String) {
        let overall = if self.total_incremental_ms > 0.0 {
            self.total_rebuild_ms / self.total_incremental_ms
        } else {
            1.0
        };
        ObjectWriter::new(out)
            .field("runs_per_mode", &RUNS)
            .field("total_rebuild_ms", &self.total_rebuild_ms)
            .field("total_incremental_ms", &self.total_incremental_ms)
            .field("overall_speedup", &overall)
            .field("points", &self.points)
            .finish();
    }
}

/// Best-of-[`RUNS`] timing of one removal mode (by wall time), attributed
/// to phases from telemetry spans, plus the report of the last run.
fn time_mode(
    topology: &Topology,
    routes: &RouteSet,
    cdg_mode: CdgMode,
) -> (RemovalTiming, noc_deadlock::RemovalReport) {
    let config = RemovalConfig {
        cdg_mode,
        ..RemovalConfig::default()
    };
    let mut best: Option<RemovalTiming> = None;
    let mut report = None;
    for _ in 0..RUNS {
        let mut topo = topology.clone();
        let mut routes = routes.clone();
        let (timing, r) = attributed_removal_run(|| {
            remove_deadlocks(&mut topo, &mut routes, &config).expect("removal succeeds")
        });
        if best.is_none_or(|b| timing.wall_ms < b.wall_ms) {
            best = Some(timing);
        }
        report = Some(r);
    }
    (
        best.expect("at least one run"),
        report.expect("at least one run"),
    )
}

fn main() {
    let args = FigureCli::parse("cdg_incremental");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    let grid: Vec<(Benchmark, usize)> = sweeps::FIG8_SWITCH_COUNTS
        .map(|s| (Benchmark::D26Media, s))
        .chain(sweeps::FIG9_SWITCH_COUNTS.map(|s| (Benchmark::D36x8, s)))
        .collect();

    // Untimed preparation: synthesize and route every grid point, sharded
    // across worker threads when --threads asks for it.
    let designs: Vec<(Topology, RouteSet)> =
        noc_flow::executor::parallel_map_ordered(&grid, args.threads, |&(benchmark, switches)| {
            let routed = routed_benchmark(benchmark, switches);
            (routed.topology().clone(), routed.routes().clone())
        });

    println!("# CDG maintenance: full rebuild vs. incremental (best of {RUNS} runs per mode)");
    println!(
        "{:>12} {:>10} {:>8} {:>12} {:>10} {:>14} {:>18} {:>9}",
        "benchmark",
        "switches",
        "breaks",
        "deps_rm",
        "deps_add",
        "rebuild_ms",
        "incremental_ms",
        "speedup"
    );
    let mut points = Vec::with_capacity(grid.len());
    for ((benchmark, switches), (topology, routes)) in grid.iter().zip(designs) {
        let (rebuild, rebuild_report) = time_mode(&topology, &routes, CdgMode::FullRebuild);
        let (incremental, incremental_report) = time_mode(&topology, &routes, CdgMode::Incremental);
        assert!(
            incremental_report.same_outcome(&rebuild_report),
            "{benchmark}/{switches}: modes disagree — timing numbers would be meaningless"
        );
        let point = TimingPoint {
            benchmark: *benchmark,
            switch_count: *switches,
            cycles_broken: incremental_report.cycles_broken,
            deps_removed: incremental_report.cdg.deps_removed(),
            deps_added: incremental_report.cdg.deps_added(),
            rebuild,
            incremental,
        };
        println!(
            "{:>12} {:>10} {:>8} {:>12} {:>10} {:>14.3} {:>18.3} {:>8.2}x",
            point.benchmark.name(),
            point.switch_count,
            point.cycles_broken,
            point.deps_removed,
            point.deps_added,
            point.rebuild.wall_ms,
            point.incremental.wall_ms,
            point.speedup()
        );
        println!(
            "{:>12}   phases: rebuild build/search/scc/other = \
             {:.3}/{:.3}/{:.3}/{:.3} ms, incremental = {:.3}/{:.3}/{:.3}/{:.3} ms",
            "",
            point.rebuild.build_ms,
            point.rebuild.search_ms,
            point.rebuild.scc_ms,
            point.rebuild.other_ms(),
            point.incremental.build_ms,
            point.incremental.search_ms,
            point.incremental.scc_ms,
            point.incremental.other_ms()
        );
        points.push(point);
    }

    let total_rebuild_ms: f64 = points.iter().map(|p| p.rebuild.wall_ms).sum();
    let total_incremental_ms: f64 = points.iter().map(|p| p.incremental.wall_ms).sum();
    println!();
    println!(
        "totals: rebuild {total_rebuild_ms:.1} ms, incremental {total_incremental_ms:.1} ms, \
         overall speedup {:.2}x",
        total_rebuild_ms / total_incremental_ms.max(1e-9)
    );

    let data = TimingArtifact {
        points,
        total_rebuild_ms,
        total_incremental_ms,
    };
    args.write_artifact(&data);
}
