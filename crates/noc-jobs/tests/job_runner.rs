//! End-to-end properties of the job system on a synthetic source:
//! kill-and-resume byte identity, torn-log recovery, bounded runs, and
//! 100 % cache hits on re-submission.

use noc_jobs::{
    task_digest, ArtifactCache, AssembleContext, JobError, JobRequest, JobRunner, JobSource,
    JobStore,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A deterministic toy sweep: task i computes `{"i": i, "sq": i*i}`, and
/// the artifact is the array of all task results.  Every `run_task` call
/// bumps a counter so tests can assert *zero recomputation*.
struct CountingSource {
    tasks: usize,
    calls: Arc<AtomicUsize>,
}

impl CountingSource {
    fn new(tasks: usize) -> Self {
        CountingSource {
            tasks,
            calls: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl JobSource for CountingSource {
    fn figure(&self) -> &str {
        "counting"
    }

    fn task_count(&self) -> usize {
        self.tasks
    }

    fn run_task(&self, index: usize) -> Result<String, JobError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(format!("{{\"i\":{index},\"sq\":{}}}", index * index))
    }

    fn assemble(&self, ctx: &AssembleContext<'_>) -> Result<String, JobError> {
        let payload = format!("[{}]", ctx.results.join(","));
        Ok(noc_flow::json::Artifact::new(ctx.figure, &noc_flow::json::RawJson(&payload)).render())
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "noc-jobs-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> JobRequest {
    JobRequest::new("counting")
}

#[test]
fn uninterrupted_run_completes_and_commits() {
    let dir = temp_dir("complete");
    let source = CountingSource::new(7);
    let mut runner = JobRunner::new(JobStore::open(&dir, spec()).unwrap());
    let report = runner.run(&source).unwrap();
    assert_eq!(report.stats.total, 7);
    assert_eq!(report.stats.computed, 7);
    assert_eq!(report.stats.resumed, 0);
    let artifact = report.artifact.expect("unbounded run finishes");
    assert!(artifact.text.contains("\"sq\":36"));
    assert_eq!(
        std::fs::read_to_string(&artifact.path).unwrap(),
        artifact.text
    );
    assert_eq!(source.calls.load(Ordering::Relaxed), 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_run_resumes_byte_identically_for_every_kill_point() {
    // The reference: one uninterrupted run.
    let reference_dir = temp_dir("ref");
    let source = CountingSource::new(6);
    let reference = JobRunner::new(JobStore::open(&reference_dir, spec()).unwrap())
        .run(&source)
        .unwrap()
        .artifact
        .unwrap()
        .text;
    std::fs::remove_dir_all(&reference_dir).unwrap();

    // "Kill" the job after K completed tasks (drop runner and store), then
    // reopen the directory and finish.  Every kill point must reproduce
    // the reference bytes exactly.
    for kill_after in 0..6 {
        let dir = temp_dir(&format!("kill{kill_after}"));
        let source = CountingSource::new(6);
        let mut runner = JobRunner::new(JobStore::open(&dir, spec()).unwrap());
        let partial = runner.run_bounded(&source, kill_after).unwrap();
        assert!(partial.artifact.is_none(), "budget must interrupt the job");
        assert_eq!(partial.stats.computed, kill_after);
        drop(runner);

        let source = CountingSource::new(6);
        let mut resumed = JobRunner::new(JobStore::open(&dir, spec()).unwrap());
        let report = resumed.run(&source).unwrap();
        assert_eq!(report.stats.resumed, kill_after);
        assert_eq!(report.stats.computed, 6 - kill_after);
        assert_eq!(
            report.artifact.unwrap().text,
            reference,
            "kill point {kill_after}: resumed artifact must be byte-identical"
        );
        assert_eq!(
            source.calls.load(Ordering::Relaxed),
            6 - kill_after,
            "resume recomputes only the missing tasks"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_survives_a_torn_log_tail() {
    let dir = temp_dir("torn");
    let source = CountingSource::new(4);
    let mut runner = JobRunner::new(JobStore::open(&dir, spec()).unwrap());
    runner.run_bounded(&source, 3).unwrap();
    drop(runner);
    // Crash mid-append: garbage with no newline at the log tail.
    use std::io::Write as _;
    let log = dir.join("tasks.ndjson");
    let mut file = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
    file.write_all(b"{\"index\":3,\"dig").unwrap();
    drop(file);

    let source = CountingSource::new(4);
    let report = JobRunner::new(JobStore::open(&dir, spec()).unwrap())
        .run(&source)
        .unwrap();
    assert_eq!(report.stats.resumed, 3);
    assert_eq!(report.stats.computed, 1);
    assert!(report.artifact.is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resubmitted_job_is_all_cache_hits() {
    let cache_dir = temp_dir("cache");
    let cache = ArtifactCache::new(&cache_dir);

    let first_dir = temp_dir("first");
    let source = CountingSource::new(5);
    let first = JobRunner::new(JobStore::open(&first_dir, spec()).unwrap())
        .with_cache(&cache)
        .run(&source)
        .unwrap();
    assert_eq!(first.stats.computed, 5);
    assert_eq!(first.stats.cache_hits, 0);
    let reference = first.artifact.unwrap().text;

    // Same spec, fresh directory: every task must come from the cache,
    // with zero run_task calls.
    let second_dir = temp_dir("second");
    let source = CountingSource::new(5);
    let second = JobRunner::new(JobStore::open(&second_dir, spec()).unwrap())
        .with_cache(&cache)
        .run(&source)
        .unwrap();
    assert_eq!(second.stats.cache_hits, 5, "100% cache hits");
    assert_eq!(second.stats.computed, 0);
    assert_eq!(
        source.calls.load(Ordering::Relaxed),
        0,
        "re-submitted identical job performs zero recomputation"
    );
    assert_eq!(second.artifact.unwrap().text, reference);

    // A different spec must not hit the same entries.
    let other = JobRequest::from_json("{\"figure\":\"counting\",\"params\":{\"n\":1}}").unwrap();
    assert_ne!(task_digest(&spec(), 0), task_digest(&other, 0));

    std::fs::remove_dir_all(&cache_dir).unwrap();
    std::fs::remove_dir_all(&first_dir).unwrap();
    std::fs::remove_dir_all(&second_dir).unwrap();
}

#[test]
fn completed_job_short_circuits_on_rerun() {
    let dir = temp_dir("rerun");
    let source = CountingSource::new(3);
    JobRunner::new(JobStore::open(&dir, spec()).unwrap())
        .run(&source)
        .unwrap();
    let calls_after_first = source.calls.load(Ordering::Relaxed);

    let report = JobRunner::new(JobStore::open(&dir, spec()).unwrap())
        .run(&source)
        .unwrap();
    assert_eq!(report.stats.resumed, 3);
    assert_eq!(report.stats.computed, 0);
    assert!(report.artifact.is_some());
    assert_eq!(source.calls.load(Ordering::Relaxed), calls_after_first);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn figure_mismatch_is_a_typed_error() {
    let dir = temp_dir("figmismatch");
    let source = CountingSource::new(2);
    let wrong = JobRequest::new("some_other_figure");
    let mut runner = JobRunner::new(JobStore::open(&dir, wrong).unwrap());
    assert!(matches!(runner.run(&source), Err(JobError::Spec(_))));
    std::fs::remove_dir_all(&dir).unwrap();
}
