//! Cycle search in directed graphs.
//!
//! The deadlock-removal algorithm (Algorithm 1 of the paper) repeatedly asks
//! for the *smallest* cycle of the channel dependency graph
//! (`GetSmallestCycle`).  The paper finds cycles by running a breadth-first
//! search from every vertex and checking whether the start vertex is
//! reached again; [`smallest_cycle`] implements exactly that strategy,
//! returning the shortest cycle over all start vertices.
//!
//! # Canonical search order
//!
//! Every search in this module scans successors in ascending *rank* order
//! (node id for the plain entry points, a caller-supplied key for the `_by`
//! variants).  That makes each result a pure function of the edge **set**,
//! independent of the order edges happened to be inserted — which is what
//! lets an incrementally maintained graph (edges logically removed and new
//! ones appended, see [`crate::DiGraph::remove_edge`]) return bit-identical cycles
//! to a freshly rebuilt copy of the same graph.  The incremental
//! deadlock-removal loop in `noc-deadlock` relies on this contract.
//!
//! # Incremental search
//!
//! [`IncrementalCycleFinder`] answers repeated smallest-cycle queries over a
//! graph that changes a little between queries.  It caches surviving
//! candidate cycles as length bounds, seeds the next query from the nodes
//! incident to changed edges ([`mark_dirty`](IncrementalCycleFinder::mark_dirty)),
//! and then runs a bound-pruned global verification scan, so the exactness
//! of the full search is preserved while the per-query cost collapses to
//! small bounded neighbourhood explorations.

use crate::csr::GraphView;
use crate::digraph::NodeId;
use crate::scc;
use std::collections::VecDeque;

/// Returns the shortest directed cycle through `start`, as the ordered list
/// of nodes `[start, ..., last]` such that every consecutive pair is an edge
/// and `last -> start` closes the cycle.  Returns `None` when no cycle passes
/// through `start`.
///
/// Runs a BFS from `start` over successors; the first time `start` is seen
/// again, the BFS tree gives a shortest closing path (this is the per-vertex
/// search the paper describes).  Successors are scanned in ascending node-id
/// order, so the returned cycle depends only on the edge set (see the
/// [module docs](self)).
pub fn shortest_cycle_through<G: GraphView>(graph: &G, start: NodeId) -> Option<Vec<NodeId>> {
    bounded_cycle_bfs(graph, start, usize::MAX, &NodeId::index)
}

/// [`shortest_cycle_through`] with an inclusive length bound: only cycles of
/// at most `max_len` nodes are found, and the BFS never explores deeper than
/// the bound allows.  `max_len == 0` always returns `None`.
///
/// When the shortest cycle through `start` is within the bound, the result
/// is *identical* to the unbounded search (the bound only prunes layers the
/// unbounded BFS would have visited after finding the cycle), which is what
/// allows bound-pruned scans to stay exact.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, cycles};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
/// for i in 0..4 { g.add_edge(n[i], n[(i + 1) % 4], ()); }
/// assert_eq!(cycles::shortest_cycle_through_bounded(&g, n[0], 4).unwrap().len(), 4);
/// assert_eq!(cycles::shortest_cycle_through_bounded(&g, n[0], 3), None);
/// ```
pub fn shortest_cycle_through_bounded<G: GraphView>(
    graph: &G,
    start: NodeId,
    max_len: usize,
) -> Option<Vec<NodeId>> {
    bounded_cycle_bfs(graph, start, max_len, &NodeId::index)
}

/// Returns the smallest directed cycle of the graph (fewest nodes), or
/// `None` if the graph is acyclic.
///
/// Ties are broken towards the cycle whose starting vertex has the smallest
/// node id, and the per-vertex BFS scans successors in ascending node-id
/// order, which makes the result a deterministic function of the edge set.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, cycles};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
/// // Big cycle 0-1-2-3-4 and a chord creating the small cycle 2-3.
/// for i in 0..5 { g.add_edge(n[i], n[(i + 1) % 5], ()); }
/// g.add_edge(n[3], n[2], ());
/// let cycle = cycles::smallest_cycle(&g).unwrap();
/// assert_eq!(cycle.len(), 2);
/// ```
pub fn smallest_cycle<G: GraphView>(graph: &G) -> Option<Vec<NodeId>> {
    smallest_cycle_by(graph, NodeId::index)
}

/// [`smallest_cycle`] with a caller-supplied node ranking.
///
/// `rank` must be injective (distinct nodes map to distinct keys).  The
/// smallest cycle is selected by fewest nodes first, then by the smallest
/// rank of the vertex the cycle is reported from, and the BFS scans
/// successors in ascending rank order.  Two graphs holding the same logical
/// edge set under a shared ranking therefore return the same cycle even if
/// their node ids and edge insertion orders differ — the property the
/// incremental CDG maintenance in `noc-deadlock` is built on (it ranks
/// vertices by their channel, which both the rebuilt and the incrementally
/// maintained CDG agree on).
pub fn smallest_cycle_by<G: GraphView, K: Ord>(
    graph: &G,
    rank: impl Fn(NodeId) -> K,
) -> Option<Vec<NodeId>> {
    bounded_smallest_scan(graph, &rank, usize::MAX)
}

/// Returns `true` if the graph contains no directed cycle.
pub fn is_acyclic<G: GraphView>(graph: &G) -> bool {
    !scc::has_cycle(graph)
}

/// Enumerates simple cycles of the graph, up to `limit` cycles.
///
/// This is a bounded DFS-based enumeration; it is used by the ablation
/// experiments and diagnostics, while the removal algorithm itself only ever
/// needs the smallest cycle.
///
/// # `limit` semantics
///
/// `limit` is an inclusive cap on the *number of cycles returned*, not on
/// their length: the enumeration stops as soon as `limit` cycles have been
/// collected, so with more than `limit` simple cycles in the graph the
/// result is a truncation (which cycles survive depends on the DFS order —
/// roots ascending by node id, each cycle reported exactly once, rooted at
/// its minimum node id).  `limit == 0` returns an empty vector without
/// touching the graph, and a `limit` larger than the true cycle count is
/// harmless.
///
/// ```
/// use noc_graph::{DiGraph, cycles};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
/// // Two disjoint 2-cycles: 0 <-> 1 and 2 <-> 3.
/// g.add_edge(n[0], n[1], ());
/// g.add_edge(n[1], n[0], ());
/// g.add_edge(n[2], n[3], ());
/// g.add_edge(n[3], n[2], ());
/// assert_eq!(cycles::enumerate_cycles(&g, 0).len(), 0);  // 0 = ask for nothing
/// assert_eq!(cycles::enumerate_cycles(&g, 1).len(), 1);  // truncated
/// assert_eq!(cycles::enumerate_cycles(&g, 10).len(), 2); // all of them
/// ```
pub fn enumerate_cycles<G: GraphView>(graph: &G, limit: usize) -> Vec<Vec<NodeId>> {
    let mut result = Vec::new();
    if limit == 0 {
        return result;
    }
    let n = graph.node_count();
    for root in graph.node_ids() {
        if result.len() >= limit {
            break;
        }
        // DFS that only visits nodes with id >= root, so each cycle is
        // discovered exactly once, rooted at its minimal node.
        let mut stack: Vec<(NodeId, Vec<NodeId>)> = vec![(root, vec![root])];
        let mut on_path = vec![false; n];
        // Iterative DFS with explicit path tracking; for modest graph sizes
        // (CDGs have at most a few thousand channels) this is sufficient.
        while let Some((node, path)) = stack.pop() {
            on_path.iter_mut().for_each(|v| *v = false);
            for p in &path {
                on_path[p.index()] = true;
            }
            for succ in graph.successors(node) {
                if succ == root && !path.is_empty() {
                    // Found a cycle rooted at `root`.
                    if path.len() > 1 || graph.has_edge(root, root) {
                        result.push(path.clone());
                        if result.len() >= limit {
                            return result;
                        }
                    } else if path.len() == 1 && succ == root && node == root {
                        // self-loop
                        result.push(vec![root]);
                        if result.len() >= limit {
                            return result;
                        }
                    }
                } else if succ > root && !on_path[succ.index()] {
                    let mut next_path = path.clone();
                    next_path.push(succ);
                    stack.push((succ, next_path));
                }
            }
        }
    }
    result
}

/// Returns the length (node count) of the smallest cycle, or `None` for an
/// acyclic graph.  Convenience wrapper over [`smallest_cycle`].
///
/// # Edge cases
///
/// A self-loop is a cycle of length **1** and beats every longer cycle; a
/// pair of antiparallel edges is a cycle of length 2; parallel edges do
/// *not* create a 2-cycle on their own (both point the same way); and an
/// empty or edge-free graph has no girth at all:
///
/// ```
/// use noc_graph::{DiGraph, cycles};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// assert_eq!(cycles::girth(&g), None);            // empty graph
/// let a = g.add_node(());
/// let b = g.add_node(());
/// assert_eq!(cycles::girth(&g), None);            // no edges yet
/// g.add_edge(a, b, ());
/// g.add_edge(a, b, ());
/// assert_eq!(cycles::girth(&g), None);            // parallel edges, still acyclic
/// g.add_edge(b, a, ());
/// assert_eq!(cycles::girth(&g), Some(2));         // antiparallel pair
/// g.add_edge(b, b, ());
/// assert_eq!(cycles::girth(&g), Some(1));         // self-loop wins
/// ```
pub fn girth<G: GraphView>(graph: &G) -> Option<usize> {
    smallest_cycle(graph).map(|c| c.len())
}

/// Incremental smallest-cycle search over a graph that changes between
/// queries.
///
/// The deadlock-removal loop breaks one dependency per iteration: a handful
/// of edges disappear, a handful appear, and the rest of the graph is
/// untouched.  Re-running the full per-vertex BFS from every node each time
/// is what made the loop the suite's hot path.  This finder instead:
///
/// 1. **validates cached candidates** — cycles found in earlier queries
///    whose edges all still exist give an immediate upper bound on the new
///    smallest length;
/// 2. **seeds from the dirty region** — a bounded BFS restarts
///    [`shortest_cycle_through`] only from nodes incident to changed edges
///    (reported via [`mark_dirty`](Self::mark_dirty)), which usually
///    tightens the bound further because new cycles must pass through new
///    edges;
/// 3. **falls back to the global scan** — a full ascending-rank pass, but
///    with every BFS pruned at the current bound.  This pass is what keeps
///    the search *exact*: the new smallest cycle may be an old cycle far
///    from any changed edge (e.g. a second, untouched ring), so a
///    dirty-only restart would be unsound.  When every cached candidate has
///    died and the dirty pass finds nothing, the bound is infinite and this
///    degenerates to exactly [`smallest_cycle_by`].
///
/// The result is always identical to calling [`smallest_cycle_by`] from
/// scratch — the caches and dirty hints only ever *prune*, never change the
/// answer — which the property tests in `tests/graph_properties.rs` pin
/// down over randomized edit sequences.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, cycles, cycles::IncrementalCycleFinder};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
/// for i in 0..4 { g.add_edge(n[i], n[(i + 1) % 4], ()); }
/// let mut finder = IncrementalCycleFinder::new();
/// assert_eq!(finder.smallest_cycle_by(&g, |v| v.index()).unwrap().len(), 4);
///
/// // Break the ring; only the endpoints of the removed edge are dirty.
/// let e = g.find_edge(n[3], n[0]).unwrap();
/// g.remove_edge(e);
/// finder.mark_dirty(n[3]);
/// finder.mark_dirty(n[0]);
/// assert_eq!(finder.smallest_cycle_by(&g, |v| v.index()), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalCycleFinder {
    /// Cycles found by earlier queries, kept as candidate length bounds.
    /// Lazily validated against the live edge set at the next query.
    candidates: Vec<Vec<NodeId>>,
    /// Nodes incident to edges added or removed since the last query.
    dirty: Vec<NodeId>,
}

/// How many candidate cycles the finder keeps between queries.  The winner
/// is destroyed by every removal iteration (the loop breaks the cycle it
/// just found), so the value of the pool is in the runners-up; a handful is
/// plenty and keeps validation cheap.
const CANDIDATE_POOL: usize = 8;

impl IncrementalCycleFinder {
    /// A finder with no cached state: the first query is a plain global
    /// search.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `node` dirty: an edge incident to it was added or removed
    /// since the last query.  Dirty nodes seed the next query's search.
    ///
    /// Marking is a performance hint, never a correctness requirement — the
    /// global verification scan catches cycles the dirty region misses —
    /// so over- or under-marking is always safe.
    pub fn mark_dirty(&mut self, node: NodeId) {
        self.dirty.push(node);
    }

    /// Drops all cached candidates and dirty hints, e.g. after a wholesale
    /// graph rebuild that invalidates node identities.
    pub fn clear(&mut self) {
        self.candidates.clear();
        self.dirty.clear();
    }

    /// The smallest cycle of `graph` under the ranking `rank`, exactly as
    /// [`smallest_cycle_by`] would return it, using the cached candidates
    /// and the dirty region to prune the search.
    ///
    /// `rank` must be injective and *stable across queries* (the cached
    /// cycles assume node identities keep their meaning).
    pub fn smallest_cycle_by<G: GraphView, K: Ord>(
        &mut self,
        graph: &G,
        rank: impl Fn(NodeId) -> K,
    ) -> Option<Vec<NodeId>> {
        self.smallest_cycle_query(graph, rank, None)
    }

    /// [`smallest_cycle_by`](Self::smallest_cycle_by) with a caller-supplied
    /// **pool**: a superset of the nodes that lie on cycles (in any order),
    /// typically the members of the cyclic strongly-connected components as
    /// maintained by [`IncrementalScc`](crate::inc_scc::IncrementalScc).
    ///
    /// The verification scan visits only the pool instead of re-running a
    /// full Tarjan pass, which is what makes the removal loop's per-query
    /// cost proportional to the dirty region.  The result is identical to
    /// [`smallest_cycle_by`](Self::smallest_cycle_by) whenever the pool
    /// really covers every node on a cycle (a node off every cycle can never
    /// yield one, so a *superset* is always safe; a missing cyclic node
    /// would be unsound, which the incremental SCC equivalence tests pin).
    pub fn smallest_cycle_by_with_pool<G: GraphView, K: Ord>(
        &mut self,
        graph: &G,
        rank: impl Fn(NodeId) -> K,
        pool: &[NodeId],
    ) -> Option<Vec<NodeId>> {
        self.smallest_cycle_query(graph, rank, Some(pool))
    }

    fn smallest_cycle_query<G: GraphView, K: Ord>(
        &mut self,
        graph: &G,
        rank: impl Fn(NodeId) -> K,
        pool: Option<&[NodeId]>,
    ) -> Option<Vec<NodeId>> {
        // 1. Candidates whose edges all survived still bound the answer.
        noc_telemetry::counter("cycles.queries", 1);
        self.candidates.retain(|cycle| cycle_is_live(graph, cycle));
        noc_telemetry::counter("cycles.candidates_live", self.candidates.len() as u64);
        let mut bound = self
            .candidates
            .iter()
            .map(Vec::len)
            .min()
            .unwrap_or(usize::MAX);

        // 2. Dirty seed pass: look for strictly better cycles through the
        // changed region before paying for the global scan.
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_by_key(|a| rank(*a));
        dirty.dedup();
        noc_telemetry::counter("cycles.dirty_seeds", dirty.len() as u64);
        for &node in &dirty {
            if bound <= 1 {
                break;
            }
            if let Some(cycle) = bounded_cycle_bfs(graph, node, bound - 1, &rank) {
                noc_telemetry::counter("cycles.dirty_seed_hits", 1);
                bound = cycle.len();
                self.candidates.push(cycle);
            }
        }

        // 3. Exact global verification scan under the seeded bound.
        let best = match pool {
            Some(pool) => bounded_smallest_scan_over(graph, &rank, bound, pool.to_vec()),
            None => bounded_smallest_scan(graph, &rank, bound),
        };
        if let Some(cycle) = &best {
            self.candidates.push(cycle.clone());
        }
        // Shortest candidates first, duplicates removed (repeated queries
        // re-find the same winner; copies must not evict distinct
        // runner-up bounds from the pool).
        self.candidates
            .sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        self.candidates.dedup();
        self.candidates.truncate(CANDIDATE_POOL);
        best
    }
}

/// `true` when every edge of `cycle` (including the closing one) is live.
fn cycle_is_live<G: GraphView>(graph: &G, cycle: &[NodeId]) -> bool {
    let Some((&first, _)) = cycle.split_first() else {
        return false;
    };
    cycle.windows(2).all(|w| graph.has_edge(w[0], w[1]))
        && graph.has_edge(*cycle.last().expect("non-empty"), first)
}

/// The canonical global scan behind [`smallest_cycle_by`] and the finder's
/// verification pass: visit every node of a cyclic SCC in ascending rank
/// order, BFS-bounded by `bound` until the first hit and then by one less
/// than the best length found so far.  The first node to reach a given
/// length wins, which reproduces the (length, rank)-lexicographic tie-break
/// of the unpruned search.
fn bounded_smallest_scan<G: GraphView, K: Ord>(
    graph: &G,
    rank: &impl Fn(NodeId) -> K,
    bound: usize,
) -> Option<Vec<NodeId>> {
    let nodes: Vec<NodeId> = {
        let _span = noc_telemetry::span("scc", "full_tarjan");
        scc::cyclic_components(graph)
            .into_iter()
            .flatten()
            .collect()
    };
    bounded_smallest_scan_over(graph, rank, bound, nodes)
}

/// The scan of [`bounded_smallest_scan`] over an explicit node pool (any
/// superset of the nodes on cycles); the pool is rank-sorted here, so the
/// outcome depends only on the pool *set*.
fn bounded_smallest_scan_over<G: GraphView, K: Ord>(
    graph: &G,
    rank: &impl Fn(NodeId) -> K,
    bound: usize,
    mut nodes: Vec<NodeId>,
) -> Option<Vec<NodeId>> {
    nodes.sort_by_key(|a| rank(*a));
    nodes.dedup();
    let mut cap = bound;
    let mut best: Option<Vec<NodeId>> = None;
    for &node in &nodes {
        if cap == 0 {
            break;
        }
        if let Some(cycle) = bounded_cycle_bfs(graph, node, cap, rank) {
            cap = cycle.len() - 1;
            best = Some(cycle);
        }
    }
    best
}

/// Canonical bounded BFS: the shortest cycle through `start` of at most
/// `max_len` nodes, scanning successors in ascending `rank` order so the
/// result depends only on the edge set.
fn bounded_cycle_bfs<G: GraphView, K: Ord>(
    graph: &G,
    start: NodeId,
    max_len: usize,
    rank: &impl Fn(NodeId) -> K,
) -> Option<Vec<NodeId>> {
    if max_len == 0 || !graph.contains_node(start) {
        return None;
    }
    let n = graph.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth: Vec<usize> = vec![0; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    let mut succs: Vec<NodeId> = Vec::new();
    while let Some(node) = queue.pop_front() {
        let d = depth[node.index()];
        succs.clear();
        succs.extend(graph.successors(node));
        succs.sort_by_key(|a| rank(*a));
        succs.dedup(); // parallel edges reach the same successor
        for &succ in &succs {
            if succ == start {
                // Reconstruct start -> ... -> node by walking the BFS tree
                // from node back to the root; the edge node -> start closes
                // the cycle (d + 1 <= max_len by the enqueue guard below).
                // A self-loop is the degenerate walk of length zero
                // (node == start), yielding the one-element cycle.
                let mut path = Vec::new();
                let mut cur = node;
                loop {
                    path.push(cur);
                    if cur == start {
                        break;
                    }
                    cur = parent[cur.index()].expect("BFS parents chain back to the start node");
                }
                path.reverse();
                return Some(path);
            }
            // A node enqueued at depth d + 1 can close a cycle of
            // d + 2 nodes at best; deeper layers cannot beat the bound.
            if !visited[succ.index()] && d + 2 <= max_len {
                visited[succ.index()] = true;
                parent[succ.index()] = Some(node);
                depth[succ.index()] = d + 1;
                queue.push_back(succ);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn ring(n: usize) -> (DiGraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], ());
        }
        (g, nodes)
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert!(smallest_cycle(&g).is_none());
        assert!(is_acyclic(&g));
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn ring_cycle_is_found_in_order() {
        let (g, nodes) = ring(4);
        let cycle = smallest_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 4);
        // Consecutive elements must be connected, and last -> first closes it.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
        assert!(cycle.contains(&nodes[0]));
    }

    #[test]
    fn smallest_of_two_cycles_is_returned() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        // 5-cycle over 0..5 and a 2-cycle between 4 and 5.
        for i in 0..5 {
            g.add_edge(n[i], n[(i + 1) % 5], ());
        }
        g.add_edge(n[4], n[5], ());
        g.add_edge(n[5], n[4], ());
        let cycle = smallest_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&n[4]) && cycle.contains(&n[5]));
    }

    #[test]
    fn self_loop_is_a_cycle_of_length_one() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let cycle = smallest_cycle(&g).unwrap();
        assert_eq!(cycle, vec![a]);
        assert_eq!(girth(&g), Some(1));
    }

    #[test]
    fn shortest_cycle_through_specific_node() {
        let (g, nodes) = ring(5);
        for &n in &nodes {
            let c = shortest_cycle_through(&g, n).unwrap();
            assert_eq!(c.len(), 5);
            assert_eq!(c[0], n, "cycle must start at the requested node");
        }
    }

    #[test]
    fn shortest_cycle_through_self_loop_is_a_single_node() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(a, a, ());
        // The self-loop beats the 2-cycle from a's perspective.
        assert_eq!(shortest_cycle_through(&g, a).unwrap(), vec![a]);
        // b has no self-loop: its shortest cycle is the 2-cycle, with both
        // nodes reported exactly once.
        assert_eq!(shortest_cycle_through(&g, b).unwrap(), vec![b, a]);
    }

    #[test]
    fn shortest_cycle_through_two_cycle_has_no_duplicates() {
        let (g, nodes) = ring(2);
        for (i, &n) in nodes.iter().enumerate() {
            let c = shortest_cycle_through(&g, n).unwrap();
            assert_eq!(c.len(), 2, "2-cycle must have exactly two nodes");
            assert_eq!(c[0], n);
            assert_eq!(c[1], nodes[(i + 1) % 2]);
        }
    }

    #[test]
    fn shortest_cycle_through_prefers_short_closing_path() {
        // start -> a -> start (2-cycle) and start -> a -> b -> start
        // (3-cycle): BFS must return the 2-cycle.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(s, a, ());
        g.add_edge(a, b, ());
        g.add_edge(b, s, ());
        g.add_edge(a, s, ());
        assert_eq!(shortest_cycle_through(&g, s).unwrap(), vec![s, a]);
    }

    #[test]
    fn node_off_cycle_reports_none() {
        let (mut g, nodes) = ring(3);
        let extra = g.add_node(99);
        g.add_edge(nodes[0], extra, ());
        assert!(shortest_cycle_through(&g, extra).is_none());
        assert!(shortest_cycle_through(&g, nodes[0]).is_some());
    }

    #[test]
    fn bounded_search_respects_the_bound_and_matches_unbounded_within_it() {
        let (g, nodes) = ring(4);
        assert_eq!(shortest_cycle_through_bounded(&g, nodes[0], 0), None);
        assert_eq!(shortest_cycle_through_bounded(&g, nodes[0], 3), None);
        assert_eq!(
            shortest_cycle_through_bounded(&g, nodes[0], 4),
            shortest_cycle_through(&g, nodes[0]),
        );
        assert_eq!(
            shortest_cycle_through_bounded(&g, nodes[0], usize::MAX),
            shortest_cycle_through(&g, nodes[0]),
        );
    }

    #[test]
    fn canonical_result_is_independent_of_edge_insertion_order() {
        // Two 3-cycles through node 0: via (1, 2) and via (3, 4).  Build the
        // same edge set in two different insertion orders; the canonical
        // search must return the same cycle for both.
        let build = |edges: &[(usize, usize)]| {
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
            for &(a, b) in edges {
                g.add_edge(n[a], n[b], ());
            }
            g
        };
        let forward = build(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let reversed = build(&[(4, 0), (3, 4), (0, 3), (2, 0), (1, 2), (0, 1)]);
        assert_eq!(smallest_cycle(&forward), smallest_cycle(&reversed));
    }

    #[test]
    fn smallest_cycle_by_reversed_rank_flips_the_tie_break() {
        // Two disjoint 2-cycles; under the identity rank the 0-1 cycle wins,
        // under a reversed rank the 2-3 cycle does.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[3], n[2], ());
        let ids = smallest_cycle_by(&g, |v| v.index()).unwrap();
        assert_eq!(ids[0], n[0]);
        let reversed = smallest_cycle_by(&g, |v| usize::MAX - v.index()).unwrap();
        assert_eq!(reversed[0], n[3]);
    }

    #[test]
    fn enumerate_respects_limit() {
        let (g, _) = ring(3);
        assert_eq!(enumerate_cycles(&g, 0).len(), 0);
        assert_eq!(enumerate_cycles(&g, 10).len(), 1);
    }

    #[test]
    fn enumerate_finds_multiple_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[3], n[2], ());
        let cycles = enumerate_cycles(&g, 10);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn removed_edge_breaks_the_cycle() {
        let (mut g, nodes) = ring(4);
        let e = g.find_edge(nodes[3], nodes[0]).unwrap();
        g.remove_edge(e);
        assert!(smallest_cycle(&g).is_none());
    }

    #[test]
    fn girth_of_ring_equals_its_length() {
        for n in 2..8 {
            let (g, _) = ring(n);
            assert_eq!(girth(&g), Some(n));
        }
    }

    #[test]
    fn finder_matches_global_search_without_any_hints() {
        let (g, _) = ring(5);
        let mut finder = IncrementalCycleFinder::new();
        assert_eq!(
            finder.smallest_cycle_by(&g, |v| v.index()),
            smallest_cycle(&g),
        );
        // Asking again with stale-but-valid candidates must not change the
        // answer.
        assert_eq!(
            finder.smallest_cycle_by(&g, |v| v.index()),
            smallest_cycle(&g),
        );
    }

    #[test]
    fn finder_survives_a_disjoint_untouched_cycle() {
        // Two disjoint rings; break the one the finder reported.  The other
        // ring is nowhere near a dirty node, so only the global fallback can
        // find it — this is the unsoundness trap of a dirty-only restart.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        for i in 0..3 {
            g.add_edge(n[i], n[(i + 1) % 3], ());
            g.add_edge(n[3 + i], n[3 + (i + 1) % 3], ());
        }
        let mut finder = IncrementalCycleFinder::new();
        let first = finder.smallest_cycle_by(&g, |v| v.index()).unwrap();
        assert_eq!(first[0], n[0]);
        let e = g.find_edge(n[2], n[0]).unwrap();
        g.remove_edge(e);
        finder.mark_dirty(n[2]);
        finder.mark_dirty(n[0]);
        let second = finder.smallest_cycle_by(&g, |v| v.index()).unwrap();
        assert_eq!(second, smallest_cycle(&g).unwrap());
        assert_eq!(second[0], n[3]);
    }

    #[test]
    fn finder_picks_up_new_shorter_cycles_via_dirty_nodes() {
        let (mut g, nodes) = ring(6);
        let mut finder = IncrementalCycleFinder::new();
        assert_eq!(
            finder.smallest_cycle_by(&g, |v| v.index()).unwrap().len(),
            6
        );
        // Add a chord creating a 2-cycle.
        g.add_edge(nodes[1], nodes[0], ());
        finder.mark_dirty(nodes[1]);
        finder.mark_dirty(nodes[0]);
        let cycle = finder.smallest_cycle_by(&g, |v| v.index()).unwrap();
        assert_eq!(cycle.len(), 2);
        assert_eq!(cycle, smallest_cycle(&g).unwrap());
    }

    #[test]
    fn finder_clear_resets_state() {
        let (g, _) = ring(3);
        let mut finder = IncrementalCycleFinder::new();
        finder.smallest_cycle_by(&g, |v| v.index()).unwrap();
        finder.clear();
        assert_eq!(
            finder.smallest_cycle_by(&g, |v| v.index()),
            smallest_cycle(&g),
        );
    }
}
