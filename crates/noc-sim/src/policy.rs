//! Pluggable virtual-channel allocation policies.
//!
//! When a head flit is ready to cross onto the next physical link of its
//! route, the router must pick *which* VC of that link to request.  The
//! deadlock strategies of the suite answer that question statically — every
//! route hop carries an assigned `(link, vc)` channel — but how faithfully
//! the runtime honours the assignment is a policy decision:
//!
//! | Policy | Candidate VCs | Deadlock guarantee |
//! |---|---|---|
//! | [`AssignedVc`] | exactly the strategy's assignment | inherited from the strategy (acyclic CDG ⇒ none) |
//! | [`AdaptiveEscape`] | the base lane (VC 0) first, the assignment last | Duato: the assigned (escape) channel is always requestable, and every escape dependency ascends in layer order |
//! | [`SingleVc`] | always VC 0 | **none** — deliberately discards the assignment; must deadlock on cyclic base CDGs |
//!
//! [`SingleVc`] exists as the negative control of the experiment: it is the
//! runtime a VC-oblivious simulator would implement, and watching it deadlock
//! where every strategy's assignment delivers 100 % is what makes the VC
//! budget of the strategies *measurably* buy something.
//!
//! A candidate list is a preference order, not a commitment: the engine
//! re-evaluates it every cycle and takes the first candidate that is free,
//! so a policy that always includes the assigned escape VC satisfies
//! Duato's requirement that the escape network stays reachable from every
//! blocked state.

use noc_topology::{FlowId, LinkId};

/// Everything a [`VcPolicy`] may consult when ranking the VCs of the next
/// physical link of a packet's route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcChoice {
    /// The physical link being entered.
    pub link: LinkId,
    /// Number of VCs multiplexed on that link.
    pub link_vcs: usize,
    /// The VC the deadlock strategy assigned to this hop of the route.
    pub assigned_vc: usize,
    /// Hop index within the route (0 = first link after the source).
    pub hop: usize,
    /// The flow the packet belongs to.
    pub flow: FlowId,
}

/// A virtual-channel allocation policy: ranks the VCs a head flit may
/// request on the next link, in preference order.
pub trait VcPolicy: Sync {
    /// Stable policy name (used in sweep output and JSON artifacts).
    fn name(&self) -> &str;

    /// Appends the candidate VC indices for `choice` to `out`, most
    /// preferred first.  `out` arrives empty; implementations must push at
    /// least one in-range candidate (`< choice.link_vcs`, except for
    /// [`SingleVc`], which intentionally pins VC 0 — present on every link).
    fn candidates(&self, choice: &VcChoice, out: &mut Vec<usize>);
}

/// Honour the strategy's static VC assignment exactly — the faithful
/// runtime for `CycleBreaking`, `ResourceOrdering` and static
/// `EscapeChannel` designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AssignedVc;

impl VcPolicy for AssignedVc {
    fn name(&self) -> &str {
        "assigned-vc"
    }

    fn candidates(&self, choice: &VcChoice, out: &mut Vec<usize>) {
        out.push(choice.assigned_vc);
    }
}

/// Duato-style adaptive escape: a packet opportunistically rides the
/// *base* VC (VC 0, the adaptive lane) when it is free, and otherwise
/// falls back to the VC the strategy assigned — its escape channel, which
/// is always the final candidate.
///
/// Deadlock freedom follows Duato's argument: the engine re-issues the
/// candidate list every cycle, so a blocked head can always request its
/// assigned escape channel, and every dependency of the escape subnetwork
/// ascends in escape-layer order — an escape VC `v ≥ 1` is only ever held
/// by a packet *assigned* layer `v` there (whose later requests sit on
/// layers `≥ v`), and holders of the base lane fall back to layers `≥ 0`.
/// Within one layer the assigned hops are up\*/down\*-legal by
/// construction, so no dependency cycle can close.
///
/// The restriction to the base lane is load-bearing: letting packets
/// adaptively occupy *higher* escape layers than their own assignment
/// creates descending escape dependencies (a layer-2 channel held by a
/// packet whose escape continuation is layer 0), and such runs genuinely
/// deadlock — the exact wait-for-graph detector catches them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptiveEscape;

impl VcPolicy for AdaptiveEscape {
    fn name(&self) -> &str {
        "adaptive-escape"
    }

    fn candidates(&self, choice: &VcChoice, out: &mut Vec<usize>) {
        if choice.assigned_vc != 0 {
            out.push(0);
        }
        out.push(choice.assigned_vc);
    }
}

/// The deliberately unsafe baseline: every packet rides VC 0 of every link,
/// discarding whatever VC assignment the deadlock strategy produced — the
/// behaviour of a simulator that keys its buffers on the physical link
/// alone.  On a design whose base (single-VC) CDG is cyclic this policy
/// *must* deadlock under pressure; that observable failure is the control
/// group of the `fig_sim_strategies` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SingleVc;

impl VcPolicy for SingleVc {
    fn name(&self) -> &str {
        "unsafe-single-vc"
    }

    fn candidates(&self, _choice: &VcChoice, out: &mut Vec<usize>) {
        out.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice(link_vcs: usize, assigned_vc: usize) -> VcChoice {
        VcChoice {
            link: LinkId::from_index(3),
            link_vcs,
            assigned_vc,
            hop: 1,
            flow: FlowId::from_index(0),
        }
    }

    fn collect(policy: &dyn VcPolicy, choice: &VcChoice) -> Vec<usize> {
        let mut out = Vec::new();
        policy.candidates(choice, &mut out);
        out
    }

    #[test]
    fn assigned_vc_is_the_single_candidate() {
        assert_eq!(collect(&AssignedVc, &choice(3, 2)), vec![2]);
        assert_eq!(AssignedVc.name(), "assigned-vc");
    }

    #[test]
    fn adaptive_escape_tries_the_base_lane_then_the_assignment() {
        assert_eq!(collect(&AdaptiveEscape, &choice(4, 1)), vec![0, 1]);
        assert_eq!(collect(&AdaptiveEscape, &choice(4, 3)), vec![0, 3]);
        // A base-layer assignment degenerates to the assignment alone —
        // never a higher escape layer (that would be unsound).
        assert_eq!(collect(&AdaptiveEscape, &choice(4, 0)), vec![0]);
        assert_eq!(collect(&AdaptiveEscape, &choice(1, 0)), vec![0]);
        assert_eq!(AdaptiveEscape.name(), "adaptive-escape");
    }

    #[test]
    fn adaptive_escape_always_ends_on_the_assignment_exactly_once() {
        for vcs in 1..5 {
            for assigned in 0..vcs {
                let candidates = collect(&AdaptiveEscape, &choice(vcs, assigned));
                assert_eq!(candidates.last(), Some(&assigned));
                assert_eq!(candidates.iter().filter(|&&vc| vc == assigned).count(), 1);
                // Only the base lane is ever used adaptively.
                assert!(candidates.iter().all(|&vc| vc == 0 || vc == assigned));
            }
        }
    }

    #[test]
    fn single_vc_ignores_the_assignment() {
        assert_eq!(collect(&SingleVc, &choice(4, 3)), vec![0]);
        assert_eq!(SingleVc.name(), "unsafe-single-vc");
    }
}
