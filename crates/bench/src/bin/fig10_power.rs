//! Reproduces Figure 10: normalised NoC power consumption of the
//! resource-ordering baseline relative to the deadlock-removal algorithm for
//! the six SoC benchmarks at 14 switches.
//!
//! All six benchmarks run as one parallel sweep; pass `--json <path>` to
//! write the per-benchmark comparison as a JSON artifact.

use noc_bench::{artifact, power_comparisons, sweeps};
use noc_topology::benchmarks::Benchmark;

fn main() {
    let json_path = artifact::json_path_from_args("fig10_power");
    println!(
        "# Figure 10 — normalised power (resource ordering / deadlock removal), {} switches",
        sweeps::FIG10_SWITCHES
    );
    println!(
        "{:>12} {:>18} {:>18} {:>12} {:>12}",
        "benchmark", "removal_norm", "ordering_norm", "removal_vc", "ordering_vc"
    );
    let comparisons = power_comparisons(Benchmark::ALL, sweeps::FIG10_SWITCHES, |progress| {
        eprintln!(
            "[{}/{}] {} done",
            progress.completed, progress.total, progress.point.benchmark
        );
    });
    for c in &comparisons {
        println!(
            "{:>12} {:>18.3} {:>18.3} {:>12} {:>12}",
            c.benchmark,
            1.0,
            c.normalised_ordering_power(),
            c.removal_vcs,
            c.ordering_vcs
        );
    }
    if let Some(path) = json_path {
        artifact::write_json_artifact(&path, "fig10_power", &comparisons);
    }
}
