//! Generators for regular NoC topologies.
//!
//! The paper's method applies to arbitrary topologies; these generators
//! provide the regular shapes (rings, meshes, tori, stars, trees) that are
//! used in tests, in examples and as sanity baselines next to the
//! application-specific topologies produced by `noc-synth`.

use crate::ids::SwitchId;
use crate::topology::Topology;

/// A generated topology together with its switch handles, in generation
/// order (row-major for meshes/tori).
#[derive(Debug, Clone, PartialEq)]
pub struct Generated {
    /// The generated topology.
    pub topology: Topology,
    /// All switches in generation order.
    pub switches: Vec<SwitchId>,
}

/// Unidirectional ring of `n` switches (the shape of Figure 1 of the paper).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn unidirectional_ring(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a ring needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("ring{i}")))
        .collect();
    for i in 0..n {
        topology.add_link(switches[i], switches[(i + 1) % n], bandwidth);
    }
    Generated { topology, switches }
}

/// Bidirectional ring of `n` switches.
pub fn bidirectional_ring(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a ring needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("ring{i}")))
        .collect();
    for i in 0..n {
        let next = (i + 1) % n;
        if n > 1 {
            topology.add_bidirectional_link(switches[i], switches[next], bandwidth);
        }
    }
    Generated { topology, switches }
}

/// Open chain (line) of `n` switches with bidirectional links.
pub fn chain(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a chain needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("chain{i}")))
        .collect();
    for i in 0..n.saturating_sub(1) {
        topology.add_bidirectional_link(switches[i], switches[i + 1], bandwidth);
    }
    Generated { topology, switches }
}

/// 2-D mesh of `rows × cols` switches with bidirectional links, row-major
/// switch order.
pub fn mesh2d(rows: usize, cols: usize, bandwidth: f64) -> Generated {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..rows * cols)
        .map(|i| topology.add_switch(format!("mesh{}_{}", i / cols, i % cols)))
        .collect();
    let at = |r: usize, c: usize| switches[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                topology.add_bidirectional_link(at(r, c), at(r, c + 1), bandwidth);
            }
            if r + 1 < rows {
                topology.add_bidirectional_link(at(r, c), at(r + 1, c), bandwidth);
            }
        }
    }
    Generated { topology, switches }
}

/// 2-D torus of `rows × cols` switches (mesh plus wraparound links).
pub fn torus2d(rows: usize, cols: usize, bandwidth: f64) -> Generated {
    assert!(rows > 1 && cols > 1, "torus dimensions must be at least 2");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..rows * cols)
        .map(|i| topology.add_switch(format!("torus{}_{}", i / cols, i % cols)))
        .collect();
    let at = |r: usize, c: usize| switches[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            topology.add_bidirectional_link(at(r, c), at(r, (c + 1) % cols), bandwidth);
            topology.add_bidirectional_link(at(r, c), at((r + 1) % rows, c), bandwidth);
        }
    }
    Generated { topology, switches }
}

/// Star: switch 0 is the hub, every other switch connects to it with a
/// bidirectional link.
pub fn star(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a star needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("star{i}")))
        .collect();
    for i in 1..n {
        topology.add_bidirectional_link(switches[0], switches[i], bandwidth);
    }
    Generated { topology, switches }
}

/// Fully connected topology: a bidirectional link between every switch pair.
pub fn fully_connected(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "need at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("full{i}")))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            topology.add_bidirectional_link(switches[i], switches[j], bandwidth);
        }
    }
    Generated { topology, switches }
}

/// Balanced binary-tree topology with `n` switches (heap indexing: switch
/// `i` connects to `2i+1` and `2i+2`), bidirectional links.
pub fn binary_tree(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a tree needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("tree{i}")))
        .collect();
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                topology.add_bidirectional_link(switches[i], switches[child], bandwidth);
            }
        }
    }
    Generated { topology, switches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{scc, traversal};

    #[test]
    fn unidirectional_ring_matches_figure_1() {
        let g = unidirectional_ring(4, 1.0);
        assert_eq!(g.topology.switch_count(), 4);
        assert_eq!(g.topology.link_count(), 4);
        // Every switch has exactly one outgoing and one incoming link.
        for &sw in &g.switches {
            assert_eq!(g.topology.links_from(sw).count(), 1);
            assert_eq!(g.topology.links_to(sw).count(), 1);
        }
        assert!(scc::has_cycle(&g.topology.to_switch_graph()));
    }

    #[test]
    fn bidirectional_ring_has_twice_the_links() {
        let g = bidirectional_ring(5, 1.0);
        assert_eq!(g.topology.link_count(), 10);
    }

    #[test]
    fn chain_is_connected_and_acyclic_in_one_direction() {
        let g = chain(6, 1.0);
        assert_eq!(g.topology.link_count(), 10);
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    fn mesh_link_count_is_correct() {
        let g = mesh2d(3, 4, 1.0);
        assert_eq!(g.topology.switch_count(), 12);
        // Horizontal: 3 rows * 3 = 9 pairs, vertical: 2 * 4 = 8 pairs, times 2 directions.
        assert_eq!(g.topology.link_count(), 2 * (9 + 8));
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    fn torus_has_wraparound() {
        let g = torus2d(3, 3, 1.0);
        assert_eq!(g.topology.switch_count(), 9);
        // Every node has 4 outgoing links (right, left via neighbour's wrap, down, up).
        for &sw in &g.switches {
            assert_eq!(g.topology.links_from(sw).count(), 4);
        }
    }

    #[test]
    fn star_and_tree_are_connected() {
        for generated in [star(7, 1.0), binary_tree(7, 1.0)] {
            assert!(traversal::is_weakly_connected(
                &generated.topology.to_switch_graph()
            ));
        }
        assert_eq!(star(7, 1.0).topology.link_count(), 12);
        assert_eq!(binary_tree(7, 1.0).topology.link_count(), 12);
    }

    #[test]
    fn fully_connected_has_n_choose_2_pairs() {
        let g = fully_connected(6, 1.0);
        assert_eq!(g.topology.link_count(), 6 * 5);
    }

    #[test]
    fn single_switch_edge_cases() {
        assert_eq!(unidirectional_ring(1, 1.0).topology.link_count(), 1); // self loop link
        assert_eq!(bidirectional_ring(1, 1.0).topology.link_count(), 0);
        assert_eq!(chain(1, 1.0).topology.link_count(), 0);
        assert_eq!(star(1, 1.0).topology.link_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn zero_size_panics() {
        chain(0, 1.0);
    }
}
