//! Criterion bench regenerating the Figure 8 / Figure 9 data points
//! (VC overhead of resource ordering vs. the deadlock-removal algorithm).
//!
//! The measured quantity is the end-to-end time of one sweep point
//! (synthesis + both schemes); the printed summary after the run is the data
//! series itself, captured by `bench_output.txt`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_bench::vc_overhead_sweep;
use noc_topology::benchmarks::Benchmark;

fn fig8_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_fig9_vc_overhead");
    group.sample_size(10);

    for (benchmark, switches) in [
        (Benchmark::D26Media, 10usize),
        (Benchmark::D26Media, 20),
        (Benchmark::D36x8, 14),
        (Benchmark::D36x8, 28),
    ] {
        group.bench_with_input(
            BenchmarkId::new(benchmark.name(), switches),
            &switches,
            |b, &switches| {
                b.iter(|| vc_overhead_sweep(benchmark, [switches]));
            },
        );
    }
    group.finish();

    // Print the full series once so the bench log doubles as the figure data.
    println!("\n== Figure 8 series (D26_media) ==");
    for p in vc_overhead_sweep(Benchmark::D26Media, (5..=25).step_by(5)) {
        println!(
            "switches={:>3} resource_ordering={:>4} deadlock_removal={:>4}",
            p.switch_count, p.resource_ordering_vcs, p.deadlock_removal_vcs
        );
    }
    println!("== Figure 9 series (D36_8) ==");
    for p in vc_overhead_sweep(Benchmark::D36x8, (10..=35).step_by(5)) {
        println!(
            "switches={:>3} resource_ordering={:>4} deadlock_removal={:>4}",
            p.switch_count, p.resource_ordering_vcs, p.deadlock_removal_vcs
        );
    }
}

criterion_group!(benches, fig8_fig9);
criterion_main!(benches);
