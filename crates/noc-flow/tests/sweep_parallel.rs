//! Contract tests for the sharded sweep executor: the parallel and
//! streaming paths must be drop-in replacements for the serial
//! [`FlowSweep::run`], point for point.

use noc_flow::{
    CycleBreaking, DeadlockResolution, DeadlockStrategy, FlowError, FlowSweep, ResourceOrdering,
    ShortestPathRouter, ToJson,
};
use noc_routing::RouteSet;
use noc_topology::benchmarks::Benchmark;
use noc_topology::Topology;

fn two_benchmark_sweep() -> FlowSweep {
    FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .benchmark(Benchmark::D36x8)
        .switch_counts([6, 10, 14])
        .power_estimates(false)
}

#[test]
fn parallel_results_equal_serial_results() {
    let removal = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let strategies: &[&dyn DeadlockStrategy] = &[&removal, &ordering];
    let sweep = two_benchmark_sweep();

    let serial = sweep.run(strategies).unwrap();
    for threads in [1, 2, 4] {
        let parallel = sweep
            .clone()
            .worker_threads(threads)
            .run_parallel(strategies)
            .unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn parallel_results_equal_serial_results_with_explicit_router() {
    let removal = CycleBreaking::default();
    let strategies: &[&dyn DeadlockStrategy] = &[&removal];
    let router = ShortestPathRouter::default();
    let sweep = two_benchmark_sweep();

    let serial = sweep.run_with_router(&router, strategies).unwrap();
    let parallel = sweep
        .worker_threads(2)
        .run_streaming_with_router(&router, strategies, |_| {})
        .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn streaming_reports_every_point_exactly_once() {
    let removal = CycleBreaking::default();
    let strategies: &[&dyn DeadlockStrategy] = &[&removal];
    let sweep = two_benchmark_sweep().worker_threads(3);

    let mut seen_indices = Vec::new();
    let mut completed_sequence = Vec::new();
    let points = sweep
        .run_streaming(strategies, |progress| {
            seen_indices.push(progress.index);
            completed_sequence.push(progress.completed);
            assert_eq!(progress.total, 6);
            assert!(progress.point.switch_count > 0);
        })
        .unwrap();

    assert_eq!(points.len(), 6);
    // `completed` counts monotonically on the observer thread...
    assert_eq!(completed_sequence, (1..=6).collect::<Vec<_>>());
    // ...and every grid index is observed exactly once, whatever the
    // completion order was.
    seen_indices.sort_unstable();
    assert_eq!(seen_indices, (0..6).collect::<Vec<_>>());
}

#[test]
fn duplicate_benchmarks_and_switch_counts_are_deduplicated() {
    let removal = CycleBreaking::default();
    let strategies: &[&dyn DeadlockStrategy] = &[&removal];
    let deduped = FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .benchmark(Benchmark::D26Media)
        .benchmarks([Benchmark::D36x8, Benchmark::D26Media])
        .switch_counts([10, 6, 10])
        .switch_counts([6])
        .power_estimates(false)
        .run(strategies)
        .unwrap();
    let clean = FlowSweep::new()
        .benchmarks([Benchmark::D26Media, Benchmark::D36x8])
        .switch_counts([10, 6])
        .power_estimates(false)
        .run(strategies)
        .unwrap();
    assert_eq!(deduped, clean, "duplicates add no grid points");
    // First-seen order: D26_media before D36_8, 10 before 6.
    let order: Vec<(Benchmark, usize)> = deduped
        .iter()
        .map(|p| (p.benchmark, p.switch_count))
        .collect();
    assert_eq!(
        order,
        vec![
            (Benchmark::D26Media, 10),
            (Benchmark::D26Media, 6),
            (Benchmark::D36x8, 10),
            (Benchmark::D36x8, 6),
        ]
    );
    // The parallel path shares the same grid.
    let parallel = FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .benchmark(Benchmark::D26Media)
        .benchmarks([Benchmark::D36x8, Benchmark::D26Media])
        .switch_counts([10, 6, 10])
        .switch_counts([6])
        .power_estimates(false)
        .worker_threads(2)
        .run_parallel(strategies)
        .unwrap();
    assert_eq!(parallel, clean);
}

/// A strategy that always fails, for exercising the executor's error path.
struct AlwaysFails;

impl DeadlockStrategy for AlwaysFails {
    fn name(&self) -> &str {
        "always-fails"
    }

    fn resolve(
        &self,
        _topology: &mut Topology,
        _routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        Err(FlowError::NoDefaultRoutes)
    }
}

#[test]
fn a_failing_point_aborts_the_parallel_sweep_with_its_error() {
    let failing = AlwaysFails;
    let strategies: &[&dyn DeadlockStrategy] = &[&failing];
    let error = two_benchmark_sweep()
        .worker_threads(2)
        .run_parallel(strategies)
        .unwrap_err();
    assert!(matches!(error, FlowError::NoDefaultRoutes));
}

#[test]
fn sweep_points_serialize_to_parseable_json() {
    let removal = CycleBreaking::default();
    let strategies: &[&dyn DeadlockStrategy] = &[&removal];
    let points = FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .switch_counts([10])
        .run_parallel(strategies)
        .unwrap();
    let json = points.to_json();
    let value = noc_flow::JsonValue::parse(&json).expect("artifact is valid JSON");
    let array = value.as_array().unwrap();
    assert_eq!(array.len(), 1);
    assert_eq!(
        array[0].get("benchmark").unwrap().as_str(),
        Some("D26_media")
    );
    assert_eq!(
        array[0].get("switch_count").unwrap().as_number(),
        Some(10.0)
    );
    let outcomes = array[0].get("outcomes").unwrap().as_array().unwrap();
    assert_eq!(
        outcomes[0].get("strategy").unwrap().as_str(),
        Some("cycle-breaking")
    );
    assert!(outcomes[0].get("power_mw").unwrap().as_number().is_some());
}

#[test]
fn vc_simulation_attaches_sim_stats_and_stays_deterministic() {
    use noc_flow::VcSweepSim;
    use noc_sim::{TrafficConfig, VcSimConfig};

    let removal = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let strategies: &[&dyn DeadlockStrategy] = &[&removal, &ordering];
    let sweep = FlowSweep::new()
        .benchmark(Benchmark::D36x8)
        .switch_counts([10, 12])
        .power_estimates(false)
        .vc_simulation(VcSweepSim {
            sim: VcSimConfig {
                buffer_depth: 1,
                ..VcSimConfig::default()
            },
            traffic: TrafficConfig {
                packets_per_flow: 2,
                packet_length: 4,
                ..TrafficConfig::default()
            },
        });

    let serial = sweep.run(strategies).unwrap();
    let parallel = sweep
        .clone()
        .worker_threads(2)
        .run_parallel(strategies)
        .unwrap();
    assert_eq!(serial, parallel, "sim results must be deterministic");

    for point in &serial {
        for outcome in &point.outcomes {
            let sim = outcome
                .sim
                .as_ref()
                .expect("vc_simulation fills the sim block");
            assert!(!sim.deadlocked, "repaired designs cannot deadlock");
            assert_eq!(sim.delivered, sim.injected);
            assert!(sim.p50_latency <= sim.p95_latency);
            assert!(sim.p95_latency <= sim.p99_latency);
            assert!(sim.p99_latency <= sim.max_latency);
            assert!(sim.throughput > 0.0);
        }
    }

    // The sim block serializes inside the outcome objects.
    let json = serial.to_json();
    let value = noc_flow::JsonValue::parse(&json).expect("valid JSON");
    let outcomes = value.as_array().unwrap()[0]
        .get("outcomes")
        .unwrap()
        .as_array()
        .unwrap();
    let sim = outcomes[0].get("sim").unwrap();
    assert!(sim.get("p95_latency").unwrap().as_number().is_some());
    assert_eq!(
        sim.get("deadlocked"),
        Some(&noc_flow::JsonValue::Bool(false))
    );

    // Without the knob the block stays empty and serializes as null.
    let bare = FlowSweep::new()
        .benchmark(Benchmark::D36x8)
        .switch_counts([10])
        .power_estimates(false)
        .run(&[&removal as &dyn DeadlockStrategy])
        .unwrap();
    assert!(bare[0].outcomes[0].sim.is_none());
    let bare_json = bare.to_json();
    let value = noc_flow::JsonValue::parse(&bare_json).unwrap();
    assert_eq!(
        value.as_array().unwrap()[0]
            .get("outcomes")
            .unwrap()
            .as_array()
            .unwrap()[0]
            .get("sim"),
        Some(&noc_flow::JsonValue::Null)
    );
}
