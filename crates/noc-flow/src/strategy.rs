//! The pluggable deadlock-handling seam of the pipeline.
//!
//! The paper's evaluation is a comparison between two ways of making the
//! same routed design deadlock-free: its cycle-breaking algorithm
//! (Algorithm 1) and the resource-ordering baseline.  [`DeadlockStrategy`]
//! captures that seam so the two schemes — and any future one, e.g. the
//! recovery-based reconfiguration of arXiv:1211.5747 — are interchangeable
//! one-line swaps in a flow.

use crate::FlowError;
use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::report::RemovalReport;
use noc_deadlock::resource_ordering::{apply_resource_ordering, ResourceOrderingResult};
use noc_routing::RouteSet;
use noc_topology::Topology;

/// What a [`DeadlockStrategy`] did to a design.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockResolution {
    /// Name of the strategy that produced this resolution.
    pub strategy: String,
    /// Total VCs added on top of the single VC every link starts with.
    pub added_vcs: usize,
    /// CDG cycles broken (0 for schemes that restructure wholesale, like
    /// resource ordering).
    pub cycles_broken: usize,
    /// Detailed report when the strategy was the paper's removal algorithm.
    pub removal: Option<RemovalReport>,
    /// Detailed result when the strategy was resource ordering.
    pub ordering: Option<ResourceOrderingResult>,
}

/// A scheme that mutates a routed design until its CDG is acyclic.
///
/// The [`resolve_deadlocks`](crate::RoutedStage::resolve_deadlocks) stage
/// re-verifies deadlock freedom after every call, so implementations that
/// fail to deliver an acyclic CDG are rejected with
/// [`FlowError::StillCyclic`] instead of leaking unsafe designs downstream.
///
/// Strategies are shared by reference across the worker threads of a
/// parallel [`FlowSweep`](crate::FlowSweep), hence the `Sync` bound; the
/// design being repaired is owned per grid point, so implementations only
/// need immutable configuration.
pub trait DeadlockStrategy: Sync {
    /// Human-readable scheme name (used in sweep output and diagnostics).
    fn name(&self) -> &str;

    /// Makes the design deadlock-free in place (extra VCs, re-routed flows).
    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError>;

    /// Convenience for harnesses that need the repaired design *and* the
    /// pristine input: resolves on an internal copy, leaving the caller's
    /// borrow untouched.
    fn resolve_cloned(
        &self,
        topology: &Topology,
        routes: &RouteSet,
    ) -> Result<(Topology, RouteSet, DeadlockResolution), FlowError> {
        let mut topology = topology.clone();
        let mut routes = routes.clone();
        let resolution = self.resolve(&mut topology, &mut routes)?;
        Ok((topology, routes, resolution))
    }
}

/// The paper's contribution: smallest-cycle-first CDG cycle breaking
/// (Algorithm 1) with forward/backward cost tables (Algorithm 2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleBreaking {
    /// Algorithm configuration (direction policy, cycle order, iteration
    /// bound).
    pub config: RemovalConfig,
}

impl CycleBreaking {
    /// Cycle breaking with an explicit [`RemovalConfig`] (used by the
    /// ablation experiments).
    pub fn with_config(config: RemovalConfig) -> Self {
        CycleBreaking { config }
    }
}

impl DeadlockStrategy for CycleBreaking {
    fn name(&self) -> &str {
        "cycle-breaking"
    }

    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        let report = remove_deadlocks(topology, routes, &self.config)?;
        Ok(DeadlockResolution {
            strategy: self.name().to_string(),
            added_vcs: report.added_vcs,
            cycles_broken: report.cycles_broken,
            removal: Some(report),
            ordering: None,
        })
    }
}

/// The baseline the paper compares against: ascending channel classes along
/// every route (Dally & Towles resource ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceOrdering;

impl DeadlockStrategy for ResourceOrdering {
    fn name(&self) -> &str {
        "resource-ordering"
    }

    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        let result = apply_resource_ordering(topology, routes)?;
        Ok(DeadlockResolution {
            strategy: self.name().to_string(),
            added_vcs: result.added_vcs,
            cycles_broken: 0,
            removal: None,
            ordering: Some(result),
        })
    }
}
