//! End-to-end application-specific flow on the D26_media SoC benchmark:
//! synthesize topologies across a range of switch counts, compare the VC
//! overhead of the deadlock-removal algorithm with resource ordering, and
//! estimate the resulting power — i.e. a miniature version of the paper's
//! Figures 8 and 10, driven by a single `FlowSweep`.
//!
//! The sweep runs on the parallel streaming executor: each grid point is
//! reported on stderr the moment its worker finishes, while the final table
//! (and the optional JSON export) keeps deterministic switch-count order.
//!
//! Run with `cargo run --release --example soc_media_synthesis`, optionally
//! passing a path to also dump the raw sweep points as JSON:
//! `cargo run --release --example soc_media_synthesis -- points.json`.

use noc_suite::flow::json::ToJson;
use noc_suite::flow::{CycleBreaking, DeadlockStrategy, FlowSweep, ResourceOrdering};
use noc_suite::topology::benchmarks::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let removal = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let points = FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .switch_counts((6..=22).step_by(4))
        .run_streaming(&[&removal, &ordering], |progress| {
            eprintln!(
                "[{}/{}] {} switches synthesized and repaired",
                progress.completed, progress.total, progress.point.switch_count
            );
        })?;

    println!(
        "{:>9} {:>12} {:>12} {:>16} {:>16}",
        "switches", "removal_vc", "ordering_vc", "removal_power", "ordering_power"
    );
    for point in &points {
        let removal = point.outcome(removal.name()).expect("strategy ran");
        let ordering = point.outcome(ordering.name()).expect("strategy ran");
        println!(
            "{:>9} {:>12} {:>12} {:>13.1} mW {:>13.1} mW",
            point.switch_count,
            removal.added_vcs,
            ordering.added_vcs,
            removal.power_mw.expect("power estimates are on by default"),
            ordering
                .power_mw
                .expect("power estimates are on by default")
        );
    }

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, points.to_json())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
