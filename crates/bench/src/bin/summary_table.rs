//! Reproduces the prose numbers of Section 5: average VC / area / power
//! savings of the deadlock-removal algorithm versus resource ordering and its
//! overhead versus the unmodified (deadlock-prone) designs.
//!
//! The six benchmark comparisons run as one parallel sweep; pass
//! `--threads <n>` to pin the worker count (default: auto-size to the
//! machine) and `--json <path>` to write the comparisons and aggregates as
//! a JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{power_comparisons, summary, sweeps, PowerComparison, Summary};
use noc_flow::json::{ObjectWriter, ToJson};
use noc_topology::benchmarks::Benchmark;

/// The artifact payload: the per-benchmark rows plus the aggregates.
struct SummaryArtifact {
    comparisons: Vec<PowerComparison>,
    summary: Summary,
}

impl ToJson for SummaryArtifact {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("comparisons", &self.comparisons)
            .field("summary", &self.summary)
            .finish();
    }
}

fn main() {
    let args = FigureCli::parse("summary_table");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!(
        "# Section 5 summary — per-benchmark comparison at {} switches",
        sweeps::FIG10_SWITCHES
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14} {:>16} {:>16}",
        "benchmark",
        "removal_vc",
        "ordering_vc",
        "vc_saving",
        "area_saving",
        "power_saving",
        "power_overhead"
    );
    let comparisons = power_comparisons(
        Benchmark::ALL,
        sweeps::FIG10_SWITCHES,
        args.threads,
        |progress| {
            eprintln!(
                "[{}/{}] {} done",
                progress.completed, progress.total, progress.point.benchmark
            );
        },
    );
    for c in &comparisons {
        println!(
            "{:>12} {:>12} {:>12} {:>13.1}% {:>13.1}% {:>15.2}% {:>15.2}%",
            c.benchmark,
            c.removal_vcs,
            c.ordering_vcs,
            c.vc_saving_vs_ordering() * 100.0,
            c.area_saving_vs_ordering() * 100.0,
            c.power_saving_vs_ordering() * 100.0,
            c.removal_power_overhead() * 100.0
        );
    }
    let s = summary(&comparisons);
    println!();
    println!("# Aggregate (paper reports: 88% VC, 66% area, 8.6% power savings; <5% overhead)");
    println!(
        "mean VC saving vs. resource ordering:    {:>6.1}%",
        s.mean_vc_saving * 100.0
    );
    println!(
        "mean area saving vs. resource ordering:  {:>6.1}%",
        s.mean_area_saving * 100.0
    );
    println!(
        "mean power saving vs. resource ordering: {:>6.2}%",
        s.mean_power_saving * 100.0
    );
    println!(
        "mean power overhead vs. no removal:      {:>6.2}%",
        s.mean_power_overhead * 100.0
    );
    println!(
        "mean area overhead vs. no removal:       {:>6.2}%",
        s.mean_area_overhead * 100.0
    );
    let data = SummaryArtifact {
        comparisons,
        summary: s,
    };
    args.write_artifact(&data);
}
