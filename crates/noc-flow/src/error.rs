//! The unified error type of the pipeline API.

use noc_deadlock::escape::EscapeError;
use noc_deadlock::recovery::RecoveryError;
use noc_deadlock::removal::RemovalError;
use noc_deadlock::verify::DeadlockCycle;
use noc_routing::RouteError;
use noc_synth::SynthesisError;
use noc_topology::TopologyError;
use std::error::Error;
use std::fmt;

/// Any failure a [`DesignFlow`](crate::DesignFlow) stage can report.
///
/// Every stage boundary validates its output (the `validate_*`/`verify`
/// checks the longhand pipelines used to call by hand), so the variants here
/// cover both the underlying algorithm errors and the stage contracts.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Topology synthesis failed.
    Synthesis(SynthesisError),
    /// Routing failed or produced invalid routes.
    Routing(RouteError),
    /// The deadlock-removal algorithm failed.
    Removal(RemovalError),
    /// The escape-channel avoidance scheme failed.
    Escape(EscapeError),
    /// The recovery-based reconfiguration scheme failed.
    Recovery(RecoveryError),
    /// An underlying topology-model error.
    Topology(TopologyError),
    /// A [`FlowSweep`](crate::FlowSweep) run was started with an empty
    /// strategy list.  A sweep with no strategies would silently produce
    /// points with empty outcome vectors, so it is rejected up front; pass
    /// at least one [`DeadlockStrategy`](crate::DeadlockStrategy).
    EmptyStrategySet,
    /// A stage that must produce a deadlock-free design left a CDG cycle —
    /// evidence that a [`DeadlockStrategy`](crate::DeadlockStrategy)
    /// implementation is broken.
    StillCyclic(DeadlockCycle),
    /// [`route_default`](crate::SynthesizedStage::route_default) was called
    /// on a design that was imported rather than synthesized, so no default
    /// routes exist; call [`route`](crate::SynthesizedStage::route) with an
    /// explicit [`Router`](crate::Router) instead.
    NoDefaultRoutes,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Synthesis(e) => write!(f, "synthesis stage failed: {e}"),
            FlowError::Routing(e) => write!(f, "routing stage failed: {e}"),
            FlowError::Removal(e) => write!(f, "deadlock-removal stage failed: {e}"),
            FlowError::Escape(e) => write!(f, "escape-channel strategy failed: {e}"),
            FlowError::Recovery(e) => write!(f, "recovery-reconfig strategy failed: {e}"),
            FlowError::Topology(e) => write!(f, "topology error: {e}"),
            FlowError::EmptyStrategySet => write!(
                f,
                "sweep was given an empty strategy list; pass at least one DeadlockStrategy"
            ),
            FlowError::StillCyclic(c) => {
                write!(f, "deadlock strategy left a cyclic CDG: {c}")
            }
            FlowError::NoDefaultRoutes => write!(
                f,
                "design was imported, not synthesized: no default routes; use route() with an explicit Router"
            ),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Synthesis(e) => Some(e),
            FlowError::Routing(e) => Some(e),
            FlowError::Removal(e) => Some(e),
            FlowError::Escape(e) => Some(e),
            FlowError::Recovery(e) => Some(e),
            FlowError::Topology(e) => Some(e),
            FlowError::StillCyclic(c) => Some(c),
            FlowError::NoDefaultRoutes | FlowError::EmptyStrategySet => None,
        }
    }
}

impl From<SynthesisError> for FlowError {
    fn from(e: SynthesisError) -> Self {
        FlowError::Synthesis(e)
    }
}

impl From<RouteError> for FlowError {
    fn from(e: RouteError) -> Self {
        FlowError::Routing(e)
    }
}

impl From<RemovalError> for FlowError {
    fn from(e: RemovalError) -> Self {
        FlowError::Removal(e)
    }
}

impl From<TopologyError> for FlowError {
    fn from(e: TopologyError) -> Self {
        FlowError::Topology(e)
    }
}

impl From<EscapeError> for FlowError {
    fn from(e: EscapeError) -> Self {
        FlowError::Escape(e)
    }
}

impl From<RecoveryError> for FlowError {
    fn from(e: RecoveryError) -> Self {
        FlowError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::LinkId;

    #[test]
    fn display_and_source_cover_wrapped_errors() {
        let e: FlowError = TopologyError::UnknownLink(LinkId::from_index(3)).into();
        assert!(e.to_string().contains("L3"));
        assert!(e.source().is_some());
        assert!(FlowError::NoDefaultRoutes.source().is_none());
        assert!(FlowError::NoDefaultRoutes.to_string().contains("Router"));
    }

    #[test]
    fn strategy_error_variants_wrap_their_sources() {
        let e: FlowError =
            EscapeError::Topology(TopologyError::UnknownLink(LinkId::from_index(1))).into();
        assert!(e.to_string().contains("escape-channel"));
        assert!(e.source().is_some());

        let e: FlowError = RecoveryError::Stalled { round: 2 }.into();
        assert!(e.to_string().contains("recovery-reconfig"));
        assert!(e.source().is_some());

        assert!(FlowError::EmptyStrategySet.source().is_none());
        assert!(FlowError::EmptyStrategySet
            .to_string()
            .contains("empty strategy list"));
    }
}
