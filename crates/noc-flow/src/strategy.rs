//! The pluggable deadlock-handling seam of the pipeline.
//!
//! The paper's evaluation is a comparison between two ways of making the
//! same routed design deadlock-free: its cycle-breaking algorithm
//! (Algorithm 1) and the resource-ordering baseline.  [`DeadlockStrategy`]
//! captures that seam, and the suite now ships the full strategy matrix
//! across the deadlock design space — one implementation per
//! [`StrategyKind`]:
//!
//! | Strategy | Kind | Mechanism | Cost model |
//! |---|---|---|---|
//! | [`CycleBreaking`] | removal | break CDG cycles (Algorithm 1) | few extra VCs |
//! | [`ResourceOrdering`] | prevention | ascending channel classes | many extra VCs |
//! | [`EscapeChannel`] | avoidance | escape-VC layers over the up*/down* subgraph | moderate extra VCs, zero cycles ever broken |
//! | [`RecoveryReconfig`] | recovery | drain cyclic SCCs onto up*/down* routes (DBR-style) | zero VCs, hop inflation + reconfiguration events |
//!
//! All four are interchangeable one-line swaps in a flow and run side by
//! side in [`FlowSweep`](crate::FlowSweep) grids (the `fig_strategy_matrix`
//! experiment).

use crate::FlowError;
use noc_deadlock::escape::{apply_escape_channels, EscapeChannelResult};
use noc_deadlock::recovery::{apply_recovery_reconfig, RecoveryResult};
use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::report::{RemovalReport, StrategyKind};
use noc_deadlock::resource_ordering::{apply_resource_ordering, ResourceOrderingResult};
use noc_routing::RouteSet;
use noc_topology::{SwitchId, Topology};

/// What a [`DeadlockStrategy`] did to a design.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockResolution {
    /// Name of the strategy that produced this resolution.
    pub strategy: String,
    /// Which point of the deadlock design space the strategy occupies.
    pub kind: StrategyKind,
    /// Total VCs added on top of the single VC every link starts with.
    pub added_vcs: usize,
    /// CDG cycles broken (0 for schemes that restructure wholesale —
    /// resource ordering, escape channels, recovery).
    pub cycles_broken: usize,
    /// Detailed report when the strategy was the paper's removal algorithm.
    pub removal: Option<RemovalReport>,
    /// Detailed result when the strategy was resource ordering.
    pub ordering: Option<ResourceOrderingResult>,
    /// Detailed result when the strategy was escape-channel avoidance.
    pub escape: Option<EscapeChannelResult>,
    /// Detailed result when the strategy was recovery reconfiguration.
    pub recovery: Option<RecoveryResult>,
}

impl DeadlockResolution {
    /// An empty resolution scaffold for `strategy`/`kind`: zero VCs, zero
    /// cycles, no detail block.  Strategy impls fill in what they did.
    pub fn new(strategy: impl Into<String>, kind: StrategyKind) -> Self {
        DeadlockResolution {
            strategy: strategy.into(),
            kind,
            added_vcs: 0,
            cycles_broken: 0,
            removal: None,
            ordering: None,
            escape: None,
            recovery: None,
        }
    }
}

/// A scheme that mutates a routed design until its CDG is acyclic.
///
/// The [`resolve_deadlocks`](crate::RoutedStage::resolve_deadlocks) stage
/// re-verifies deadlock freedom after every call, so implementations that
/// fail to deliver an acyclic CDG are rejected with
/// [`FlowError::StillCyclic`] instead of leaking unsafe designs downstream.
///
/// Strategies are shared by reference across the worker threads of a
/// parallel [`FlowSweep`](crate::FlowSweep) — which shards the strategies of
/// one grid point across workers, so two strategies may run concurrently
/// against clones of the same routed design — hence the `Sync` bound; the
/// design being repaired is owned per task, so implementations only need
/// immutable configuration.
pub trait DeadlockStrategy: Sync {
    /// Human-readable scheme name (used in sweep output and diagnostics).
    fn name(&self) -> &str;

    /// Makes the design deadlock-free in place (extra VCs, re-routed flows).
    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError>;

    /// Convenience for harnesses that need the repaired design *and* the
    /// pristine input: resolves on an internal copy, leaving the caller's
    /// borrow untouched.
    fn resolve_cloned(
        &self,
        topology: &Topology,
        routes: &RouteSet,
    ) -> Result<(Topology, RouteSet, DeadlockResolution), FlowError> {
        let mut topology = topology.clone();
        let mut routes = routes.clone();
        let resolution = self.resolve(&mut topology, &mut routes)?;
        Ok((topology, routes, resolution))
    }
}

/// The paper's contribution: smallest-cycle-first CDG cycle breaking
/// (Algorithm 1) with forward/backward cost tables (Algorithm 2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleBreaking {
    /// Algorithm configuration (direction policy, cycle order, iteration
    /// bound).
    pub config: RemovalConfig,
}

impl CycleBreaking {
    /// Cycle breaking with an explicit [`RemovalConfig`] (used by the
    /// ablation experiments).
    pub fn with_config(config: RemovalConfig) -> Self {
        CycleBreaking { config }
    }
}

impl DeadlockStrategy for CycleBreaking {
    fn name(&self) -> &str {
        "cycle-breaking"
    }

    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        let report = remove_deadlocks(topology, routes, &self.config)?;
        Ok(DeadlockResolution {
            added_vcs: report.added_vcs,
            cycles_broken: report.cycles_broken,
            removal: Some(report),
            ..DeadlockResolution::new(self.name(), StrategyKind::CycleBreaking)
        })
    }
}

/// The baseline the paper compares against: ascending channel classes along
/// every route (Dally & Towles resource ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceOrdering;

impl DeadlockStrategy for ResourceOrdering {
    fn name(&self) -> &str {
        "resource-ordering"
    }

    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        let result = apply_resource_ordering(topology, routes)?;
        Ok(DeadlockResolution {
            added_vcs: result.added_vcs,
            ordering: Some(result),
            ..DeadlockResolution::new(self.name(), StrategyKind::ResourceOrdering)
        })
    }
}

/// Escape-channel *avoidance*: routes keep their physical links but climb
/// one VC layer at every turn the up*/down* order forbids, so every layer is
/// a deadlock-free subgraph and the CDG is acyclic by construction
/// ([`noc_deadlock::escape`]).  Zero cycles are ever broken; the cost is the
/// escape VCs reserved, reported through the same
/// [`RemovalReport`]-style path as the other strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscapeChannel {
    /// Root of the BFS spanning tree defining the up*/down* order.
    pub root: SwitchId,
}

impl Default for EscapeChannel {
    fn default() -> Self {
        EscapeChannel {
            root: SwitchId::from_index(0),
        }
    }
}

impl EscapeChannel {
    /// Escape channels over the up*/down* order rooted at `root` (the
    /// default uses switch 0, which always exists in a non-empty design).
    pub fn rooted_at(root: SwitchId) -> Self {
        EscapeChannel { root }
    }
}

impl DeadlockStrategy for EscapeChannel {
    fn name(&self) -> &str {
        "escape-channel"
    }

    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        let result = apply_escape_channels(topology, routes, self.root)?;
        Ok(DeadlockResolution {
            added_vcs: result.added_vcs,
            escape: Some(result),
            ..DeadlockResolution::new(self.name(), StrategyKind::EscapeChannel)
        })
    }
}

/// Recovery-based reconfiguration (DBR-style, [`noc_deadlock::recovery`]):
/// cyclic CDG regions are detected as strongly-connected components and
/// their flows are drained onto up*/down* routes, whole SCCs at a time,
/// until the CDG is acyclic.  Adds zero VCs — the cost is reconfiguration
/// events and the hop inflation of the recovery routes, reported in the
/// resolution's [`RecoveryResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReconfig {
    /// Root of the BFS spanning tree of the recovery routing function.
    pub root: SwitchId,
}

impl Default for RecoveryReconfig {
    fn default() -> Self {
        RecoveryReconfig {
            root: SwitchId::from_index(0),
        }
    }
}

impl RecoveryReconfig {
    /// Recovery routing over the up*/down* order rooted at `root`.
    pub fn rooted_at(root: SwitchId) -> Self {
        RecoveryReconfig { root }
    }
}

impl DeadlockStrategy for RecoveryReconfig {
    fn name(&self) -> &str {
        "recovery-reconfig"
    }

    fn resolve(
        &self,
        topology: &mut Topology,
        routes: &mut RouteSet,
    ) -> Result<DeadlockResolution, FlowError> {
        let result = apply_recovery_reconfig(topology, routes, self.root)?;
        Ok(DeadlockResolution {
            recovery: Some(result),
            ..DeadlockResolution::new(self.name(), StrategyKind::RecoveryReconfig)
        })
    }
}
