//! Sharded execution of [`FlowSweep`] grids on scoped worker threads.
//!
//! The paper's evaluation (Figures 8–10) is a grid of fully independent
//! (benchmark × switch-count) design points, and *within* a point the
//! deadlock strategies are independent too (each one repairs its own clone
//! of the point's routed design).  The work unit is therefore the
//! **(grid point × strategy) pair**: workers claim flattened work indices
//! from a shared atomic counter, lazily prepare the point's routed design
//! through a per-point mutexed once-slot (whichever worker reaches the
//! point first synthesizes and routes it; others block only if they hit the
//! same point mid-preparation, and the coordinator frees the design as soon
//! as the point is assembled), charge their strategy, and send
//! `(work index, outcome)` back over a channel.  The coordinating thread
//! assembles each point as its last strategy outcome arrives, streams it to
//! the observer, and slots it into its grid position — so the returned
//! vector is in deterministic grid order and byte-identical to the serial
//! run, no matter how the workers interleave.
//!
//! This is what makes a sweep with few grid points but many strategies
//! (e.g. the `fig_strategy_matrix` four-way comparison) scale with cores:
//! previously the strategies of a point ran sequentially on one worker.
//!
//! Built on `std::thread::scope` + `std::sync::mpsc` only — the offline
//! build environment has no external dependencies (no rayon/crossbeam).

use crate::error::FlowError;
use crate::router::Router;
use crate::strategy::DeadlockStrategy;
use crate::sweep::{FlowSweep, PointSeed, StrategyOutcome, SweepPoint};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// A progress notification handed to the observer of
/// [`FlowSweep::run_streaming`] each time a worker finishes a grid point.
#[derive(Debug)]
pub struct SweepProgress<'a> {
    /// Position of the point in the deterministic grid order (the index it
    /// will occupy in the returned vector).
    pub index: usize,
    /// Number of points completed so far, this one included.  Completion
    /// order is not grid order: a sweep is done when `completed == total`,
    /// not when `index == total - 1`.
    pub completed: usize,
    /// Total number of feasible grid points in the sweep.
    pub total: usize,
    /// The point that just completed.
    pub point: &'a SweepPoint,
}

/// A per-point once-slot: `None` until the first worker prepares the
/// point's design, then the shared seed (or its preparation error) until
/// the coordinator takes it on point completion.
type SeedSlot = Mutex<Option<Result<Arc<PointSeed>, FlowError>>>;

/// Runs the sweep grid across scoped worker threads — one task per
/// (grid point × strategy) pair — and streams completed points through
/// `observer`; returns the points in grid order.
///
/// The worker count is the sweep's
/// [`worker_threads`](FlowSweep::worker_threads) setting, auto-sized to the
/// machine's available parallelism when unset and never larger than the
/// flattened work-item count.  When a task fails, remaining work is
/// abandoned (claimed tasks still finish) and the error earliest in the
/// serial execution order — grid order, then strategy order within a point,
/// with a point's preparation failure surfacing before any of its strategy
/// results — is returned, matching what the serial run would have reported.
pub(crate) fn run_sharded(
    sweep: &FlowSweep,
    router: Option<&dyn Router>,
    strategies: &[&dyn DeadlockStrategy],
    mut observer: impl FnMut(SweepProgress<'_>),
) -> Result<Vec<SweepPoint>, FlowError> {
    if strategies.is_empty() {
        return Err(FlowError::EmptyStrategySet);
    }
    let grid = sweep.grid();
    let total = grid.len();
    let per_point = strategies.len();
    let work_total = total * per_point;
    let workers = worker_count(sweep.requested_threads(), work_total);

    // Umbrella span on the coordinating thread: per-task spans live on the
    // workers, so without it the scheduling gaps between tasks would be
    // unattributed wall time in a trace.
    let mut sweep_span = noc_telemetry::span("sweep", "run_sharded");
    sweep_span.arg("points", total).arg("workers", workers);

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<StrategyOutcome, FlowError>)>();

    // One lazily prepared design per grid point, shared by its strategy
    // tasks.  The slot's mutex doubles as the once-guard: the first worker
    // to reach a point prepares it while holding the lock (same-point
    // workers block exactly like `OnceLock::get_or_init`), and the
    // coordinator *takes* the seed once the point is assembled, so a large
    // sweep only ever retains the in-flight designs, not the whole grid's.
    let mut seeds: Vec<SeedSlot> = Vec::new();
    seeds.resize_with(total, || Mutex::new(None));
    let seeds = &seeds;

    let mut outcome_slots: Vec<Vec<Option<StrategyOutcome>>> = Vec::new();
    outcome_slots.resize_with(total, || {
        let mut row = Vec::new();
        row.resize_with(per_point, || None);
        row
    });
    let mut pending: Vec<usize> = vec![per_point; total];
    let mut points: Vec<Option<SweepPoint>> = Vec::new();
    points.resize_with(total, || None);
    // Errors are kept with their flattened work index: if several in-flight
    // tasks fail, the one earliest in serial order wins.  A preparation
    // failure reaches every strategy slot of its point, so the point's
    // first slot carries it — exactly where the serial run fails.
    let mut first_error: Option<(usize, FlowError)> = None;
    let mut completed = 0usize;

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let abort = &abort;
            let grid = &grid;
            scope.spawn(move || {
                noc_telemetry::set_thread_label(format!("worker-{worker}"));
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let work = next.fetch_add(1, Ordering::Relaxed);
                    if work >= work_total {
                        break;
                    }
                    let (point_index, strategy_index) = (work / per_point, work % per_point);
                    let (benchmark, switch_count) = grid[point_index];
                    let seed = {
                        let mut slot = seeds[point_index].lock().expect("seed lock");
                        slot.get_or_insert_with(|| {
                            let mut span = noc_telemetry::span("sweep", "prepare_point");
                            span.arg("benchmark", benchmark.name())
                                .arg("switches", switch_count);
                            sweep
                                .prepare_point(benchmark, switch_count, router)
                                .map(Arc::new)
                        })
                        .clone()
                    };
                    let result = match seed {
                        Ok(seed) => {
                            let mut span = noc_telemetry::span("sweep", "strategy_outcome");
                            span.arg("benchmark", benchmark.name())
                                .arg("switches", switch_count)
                                .arg("strategy", strategies[strategy_index].name());
                            sweep.strategy_outcome(&seed, strategies[strategy_index])
                        }
                        Err(error) => Err(error),
                    };
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((work, result)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold the only remaining senders: the loop below ends
        // once every worker has exited.
        drop(tx);

        for (work, result) in rx {
            let (point_index, strategy_index) = (work / per_point, work % per_point);
            match result {
                Ok(outcome) => {
                    outcome_slots[point_index][strategy_index] = Some(outcome);
                    pending[point_index] -= 1;
                    if pending[point_index] > 0 {
                        continue;
                    }
                    // Last strategy of the point: assemble and stream it,
                    // taking the seed so the routed design is dropped now
                    // instead of living until the sweep ends.
                    let outcomes = outcome_slots[point_index]
                        .iter_mut()
                        .map(|slot| slot.take().expect("all strategy outcomes arrived"))
                        .collect();
                    let seed = seeds[point_index]
                        .lock()
                        .expect("seed lock")
                        .take()
                        .expect("a completed point was prepared")
                        .expect("a point with outcomes was prepared successfully");
                    let point = seed.point(outcomes);
                    completed += 1;
                    observer(SweepProgress {
                        index: point_index,
                        completed,
                        total,
                        point: &point,
                    });
                    points[point_index] = Some(point);
                }
                Err(error) => {
                    if first_error.as_ref().is_none_or(|(w, _)| work < *w) {
                        first_error = Some((work, error));
                    }
                }
            }
        }
    });

    if let Some((_, error)) = first_error {
        return Err(error);
    }
    Ok(points
        .into_iter()
        .map(|slot| slot.expect("every grid point was computed exactly once"))
        .collect())
}

/// Maps every item through `f` on a pool of scoped worker threads (atomic
/// index claiming, like the sweep executor) and returns the results in
/// input order.  `threads == 0` auto-sizes to the machine's available
/// parallelism; the pool never exceeds the item count.
///
/// This is the shared scatter/gather primitive behind the `--threads` knob
/// of harness entry points that are not `FlowSweep` grids (per-benchmark
/// simulation sharding, timed-design preparation, equivalence-test grids).
/// A panic in `f` propagates when the scope joins its workers.
///
/// # Example
///
/// ```
/// let squares = noc_flow::executor::parallel_map_ordered(&[1, 2, 3], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map_ordered<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = worker_count(threads, items.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                noc_telemetry::set_thread_label(format!("worker-{worker}"));
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    if tx.send((index, f(item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            slots[index] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every item was mapped exactly once"))
        .collect()
}

/// Like [`parallel_map_ordered`], but hands each result to `on_complete`
/// on the coordinating thread *as it arrives* (completion order, not input
/// order) before returning the full vector in input order.
///
/// This is the seam the `noc-jobs` runner needs: a resumable job must
/// append each task's completion record to its on-disk log the moment the
/// task finishes — batching records until the whole map returns would lose
/// every in-flight result on a crash.  `on_complete` runs on the
/// coordinator, so it may hold `&mut` state (an open log file) without
/// synchronization.
///
/// # Example
///
/// ```
/// let mut seen = Vec::new();
/// let doubled = noc_flow::executor::parallel_map_streaming(
///     &[1, 2, 3],
///     2,
///     |_, &x| x * 2,
///     |index, result| seen.push((index, *result)),
/// );
/// assert_eq!(doubled, vec![2, 4, 6]);
/// seen.sort_unstable();
/// assert_eq!(seen, vec![(0, 2), (1, 4), (2, 6)]);
/// ```
pub fn parallel_map_streaming<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(usize, &T) -> R + Sync,
    mut on_complete: impl FnMut(usize, &R),
) -> Vec<R> {
    let workers = worker_count(threads, items.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                noc_telemetry::set_thread_label(format!("worker-{worker}"));
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    if tx.send((index, f(index, item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            on_complete(index, &result);
            slots[index] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every item was mapped exactly once"))
        .collect()
}

/// Resolves the configured thread count: `0` auto-sizes to the machine's
/// available parallelism; the pool never exceeds the grid size and is at
/// least one thread.
fn worker_count(requested: usize, grid_len: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, grid_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_auto_sizes_and_clamps() {
        assert_eq!(worker_count(4, 2), 2, "never more workers than points");
        assert_eq!(worker_count(4, 100), 4);
        assert_eq!(worker_count(1, 0), 1, "empty grids still get one worker");
        assert!(worker_count(0, 100) >= 1, "auto mode is at least one");
    }

    #[test]
    fn streaming_map_sees_every_result_before_return() {
        let items: Vec<usize> = (0..32).collect();
        let mut streamed = Vec::new();
        let results = parallel_map_streaming(
            &items,
            4,
            |index, &x| (index, x * x),
            |index, result| streamed.push((index, *result)),
        );
        assert_eq!(results.len(), 32);
        for (i, &(index, square)) in results.iter().enumerate() {
            assert_eq!(index, i, "results come back in input order");
            assert_eq!(square, i * i);
        }
        streamed.sort_unstable();
        let expected: Vec<_> = (0..32).map(|i| (i, (i, i * i))).collect();
        assert_eq!(streamed, expected, "every result streamed exactly once");
    }
}
