#!/usr/bin/env python3
"""Schema and invariant checks for the JSON artifacts of the figure binaries.

Every binary of `crates/bench` writes a versioned envelope::

    {"figure": "<name>", "schema": 2, "data": ...}

and this script knows, per figure name, what shape and invariants the
payload must satisfy.  CI runs it over every artifact, so a serializer
regression, a schema drift, or a broken experimental invariant (e.g. "the
removal algorithm never needs more VCs than resource ordering") fails the
build instead of silently producing unusable artifacts.

Usage:
    ci/check_artifact.py ARTIFACT.json [--timing-tolerance T] [--max-wall-ms W]

`--timing-tolerance` applies to the two timing artifacts and is the
timing-regression guard: for `cdg_incremental` it fails when the incremental
CDG maintenance engine is slower than the full-rebuild reference by more
than the given fraction (incremental/rebuild > 1 + T); for `fig_scale` it
fails when the incremental SCC partition is slower than the full-Tarjan
reference on the scaling grid (incremental/tarjan > 1 + T).

`--max-wall-ms` applies to `fig_faults` and guards the fault sweep's
recorded wall time: live reconfiguration getting pathologically slower
(e.g. the epoch protocol looping on its fallback) fails CI even when every
logical invariant still holds.

`--min-attribution` applies to `noc_trace` artifacts (the Chrome-trace
files `--trace` writes): fail when less than the given fraction of the
root span's wall time is covered by named phase spans, i.e. when the
instrumentation stops accounting for where the time goes.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 8

CERTIFY_VERDICTS = ["certified-free", "certified-deadlockable", "unknown"]

STRATEGY_MATRIX_NAMES = [
    "cycle-breaking",
    "resource-ordering",
    "escape-channel",
    "recovery-reconfig",
]

SIM_STRATEGY_POLICIES = [
    "unsafe-single-vc",
    "cycle-breaking",
    "resource-ordering",
    "escape-channel",
    "escape-channel-adaptive",
    "recovery-reconfig",
]


class CheckError(Exception):
    pass


def require(condition, message):
    if not condition:
        raise CheckError(message)


def require_keys(obj, keys, what):
    require(isinstance(obj, dict), f"{what} must be an object, got {type(obj).__name__}")
    missing = [k for k in keys if k not in obj]
    require(not missing, f"{what} is missing keys: {missing}")


def check_vc_sweep(data, figure):
    require(isinstance(data, list) and data, f"{figure} data must be a non-empty list")
    for point in data:
        require_keys(
            point,
            ["switch_count", "resource_ordering_vcs", "deadlock_removal_vcs", "cycles_broken"],
            f"{figure} point",
        )
        require(
            point["deadlock_removal_vcs"] <= point["resource_ordering_vcs"],
            f"{figure} @ {point['switch_count']} switches: removal needs "
            f"{point['deadlock_removal_vcs']} VCs > ordering's {point['resource_ordering_vcs']}",
        )


def check_power_comparison(comparison, what):
    require_keys(
        comparison,
        [
            "benchmark",
            "original_power_mw",
            "removal_power_mw",
            "ordering_power_mw",
            "original_area_um2",
            "removal_area_um2",
            "ordering_area_um2",
            "removal_vcs",
            "ordering_vcs",
            "normalised_ordering_power",
        ],
        what,
    )
    require(
        comparison["normalised_ordering_power"] >= 1.0,
        f"{what}: resource ordering must cost at least as much power as removal "
        f"(got {comparison['normalised_ordering_power']})",
    )
    require(comparison["removal_vcs"] <= comparison["ordering_vcs"], f"{what}: VC comparison inverted")


def check_fig10(data):
    require(isinstance(data, list) and data, "fig10 data must be a non-empty list")
    for comparison in data:
        check_power_comparison(comparison, f"fig10 {comparison.get('benchmark', '?')}")


def check_summary(data):
    require_keys(data, ["comparisons", "summary"], "summary_table data")
    require(
        isinstance(data["comparisons"], list) and data["comparisons"],
        "summary_table comparisons must be a non-empty list",
    )
    for comparison in data["comparisons"]:
        check_power_comparison(comparison, f"summary {comparison.get('benchmark', '?')}")
    require_keys(
        data["summary"],
        [
            "mean_vc_saving",
            "mean_area_saving",
            "mean_power_saving",
            "mean_power_overhead",
            "mean_area_overhead",
        ],
        "summary aggregates",
    )
    require(0.0 < data["summary"]["mean_vc_saving"] <= 1.0, "mean VC saving out of range")


def check_sim_validation(data):
    require(isinstance(data, list) and data, "sim_validation data must be a non-empty list")
    for validation in data:
        require_keys(
            validation,
            [
                "benchmark",
                "original_cdg_cyclic",
                "original_deadlocked",
                "fixed_deadlocked",
                "fixed_delivered",
                "fixed_mean_latency",
                "fixed_p95_latency",
            ],
            f"sim_validation {validation.get('benchmark', '?')}",
        )
        require(
            validation["fixed_deadlocked"] is False,
            f"{validation['benchmark']}: the repaired design deadlocked in simulation",
        )
        require(
            validation["fixed_delivered"] > 0,
            f"{validation['benchmark']}: the repaired design delivered no packets",
        )


def check_phase_breakdown(phases, wall_ms, what):
    """One telemetry-attributed timing breakdown: the phases are disjoint
    (build / search-net-of-SCC / SCC / other), so they must sum back to the
    reported wall time, and the wall time must match the lump field it
    replaced."""
    require_keys(phases, ["wall_ms", "build_ms", "search_ms", "scc_ms", "other_ms"], what)
    for key, value in phases.items():
        require(
            isinstance(value, (int, float)) and value >= 0.0,
            f"{what}: {key} must be a non-negative number, got {value!r}",
        )
    require(
        abs(phases["wall_ms"] - wall_ms) < 1e-9,
        f"{what}: phase wall_ms {phases['wall_ms']} disagrees with the point's {wall_ms}",
    )
    covered = phases["build_ms"] + phases["search_ms"] + phases["scc_ms"] + phases["other_ms"]
    require(
        covered <= phases["wall_ms"] * 1.001 + 1e-6,
        f"{what}: phases sum to {covered:.3f} ms > wall {phases['wall_ms']:.3f} ms",
    )


def check_cdg_incremental(data, timing_tolerance):
    require_keys(
        data,
        ["runs_per_mode", "total_rebuild_ms", "total_incremental_ms", "overall_speedup", "points"],
        "cdg_incremental data",
    )
    points = data["points"]
    require(isinstance(points, list) and points, "cdg_incremental must contain timed grid points")
    for point in points:
        require_keys(
            point,
            [
                "benchmark",
                "switch_count",
                "cycles_broken",
                "deps_removed",
                "deps_added",
                "rebuild_ms",
                "incremental_ms",
                "rebuild_phases",
                "incremental_phases",
                "speedup",
            ],
            "cdg_incremental point",
        )
        where = f"cdg_incremental {point['benchmark']} @ {point['switch_count']} switches"
        check_phase_breakdown(point["rebuild_phases"], point["rebuild_ms"], f"{where} rebuild")
        check_phase_breakdown(
            point["incremental_phases"], point["incremental_ms"], f"{where} incremental"
        )
    require(
        any(p["cycles_broken"] > 0 for p in points),
        "cdg_incremental grid has no cycle-heavy points — the timing would be vacuous",
    )
    # The binary asserts outcome equality between the two modes internally;
    # here we only guard the artifact shape and, optionally, the timing.
    if timing_tolerance is not None:
        rebuild = data["total_rebuild_ms"]
        incremental = data["total_incremental_ms"]
        require(rebuild > 0.0, "cdg_incremental rebuild total must be positive")
        ratio = incremental / rebuild
        require(
            ratio <= 1.0 + timing_tolerance,
            "timing regression: incremental CDG maintenance took "
            f"{incremental:.2f} ms vs {rebuild:.2f} ms rebuild "
            f"(ratio {ratio:.3f} > allowed {1.0 + timing_tolerance:.3f})",
        )


SCALE_FAMILIES = ["mesh2d", "torus2d", "mesh3d", "torus3d", "fat-tree", "dragonfly"]


def check_fig_scale(data, timing_tolerance):
    require_keys(
        data,
        [
            "runs_per_mode",
            "strategy_switch_cap",
            "total_incremental_ms",
            "total_full_tarjan_ms",
            "overall_speedup",
            "points",
        ],
        "fig_scale data",
    )
    points = data["points"]
    require(isinstance(points, list) and points, "fig_scale must contain timed grid points")
    cap = data["strategy_switch_cap"]
    by_family = {}
    for point in points:
        require_keys(
            point,
            [
                "family",
                "switches",
                "links",
                "channels",
                "flows",
                "cycles_broken",
                "added_vcs",
                "incremental_scc_ms",
                "full_tarjan_ms",
                "incremental_scc_phases",
                "full_tarjan_phases",
                "speedup",
                "strategies",
            ],
            "fig_scale point",
        )
        where = f"fig_scale {point['family']} @ {point['switches']} switches"
        check_phase_breakdown(
            point["incremental_scc_phases"], point["incremental_scc_ms"], f"{where} inc-scc"
        )
        check_phase_breakdown(
            point["full_tarjan_phases"], point["full_tarjan_ms"], f"{where} tarjan"
        )
        require(
            point["family"] in SCALE_FAMILIES,
            f"{where}: unknown family; known: {SCALE_FAMILIES}",
        )
        require(point["flows"] > 0, f"{where}: workload has no flows")
        require(
            point["channels"] >= point["links"],
            f"{where}: fewer channels than links (every link carries at least one VC)",
        )
        if point["switches"] <= cap:
            names = sorted(s["strategy"] for s in point["strategies"])
            require(
                names == sorted(STRATEGY_MATRIX_NAMES),
                f"{where}: expected one strategy row per strategy, got {names}",
            )
            rows = {s["strategy"]: s for s in point["strategies"]}
            require(
                rows["escape-channel"]["cycles_broken"] == 0,
                f"{where}: escape-channel avoidance must break zero cycles",
            )
            require(
                rows["recovery-reconfig"]["added_vcs"] == 0,
                f"{where}: recovery reconfiguration must add zero VCs",
            )
            require(
                rows["cycle-breaking"]["added_vcs"] <= rows["resource-ordering"]["added_vcs"],
                f"{where}: removal must not need more VCs than resource ordering",
            )
            require(
                rows["cycle-breaking"]["added_vcs"] == point["added_vcs"]
                and rows["cycle-breaking"]["cycles_broken"] == point["cycles_broken"],
                f"{where}: cycle-breaking strategy row disagrees with the timed point",
            )
        else:
            require(
                point["strategies"] == [],
                f"{where}: strategy rows above the {cap}-switch cap",
            )
        by_family.setdefault(point["family"], []).append(point)
    # The grid must scale monotonically within each family (it is generated
    # in ascending size order) and reach the headline sizes.
    for family, rows in by_family.items():
        sizes = [p["switches"] for p in rows]
        require(
            sizes == sorted(sizes) and len(set(sizes)) == len(sizes),
            f"fig_scale {family}: switch counts must strictly increase, got {sizes}",
        )
        for small, large in zip(rows, rows[1:]):
            require(
                large["links"] > small["links"] and large["channels"] > small["channels"],
                f"fig_scale {family}: links/channels must grow with switch count",
            )
    require(
        any(p["switches"] >= 10_000 for p in points),
        "fig_scale grid never reaches the 10k-switch headline point",
    )
    require(
        any(p["cycles_broken"] > 0 for p in points),
        "fig_scale grid has no cycle-heavy points — the timing would be vacuous",
    )
    # The binary asserts outcome equality between the two SCC modes
    # internally; here we guard the shape and, optionally, the timing.
    if timing_tolerance is not None:
        tarjan = data["total_full_tarjan_ms"]
        incremental = data["total_incremental_ms"]
        require(tarjan > 0.0, "fig_scale full-Tarjan total must be positive")
        ratio = incremental / tarjan
        require(
            ratio <= 1.0 + timing_tolerance,
            "timing regression: incremental SCC maintenance took "
            f"{incremental:.2f} ms vs {tarjan:.2f} ms full Tarjan "
            f"(ratio {ratio:.3f} > allowed {1.0 + timing_tolerance:.3f})",
        )


def check_strategy_matrix(data):
    require_keys(data, ["strategies", "points"], "fig_strategy_matrix data")
    require(
        data["strategies"] == STRATEGY_MATRIX_NAMES,
        f"strategy list must be {STRATEGY_MATRIX_NAMES}, got {data['strategies']}",
    )
    points = data["points"]
    require(isinstance(points, list) and points, "fig_strategy_matrix must contain sweep points")
    benchmarks = {p["benchmark"] for p in points}
    require(
        {"D26_media", "D36_8"} <= benchmarks,
        f"the matrix must cover the Figure 8 and Figure 9 benchmarks, got {sorted(benchmarks)}",
    )
    for point in points:
        require_keys(
            point,
            ["benchmark", "switch_count", "active_flows", "mean_hops", "outcomes"],
            "fig_strategy_matrix point",
        )
        where = f"{point['benchmark']} @ {point['switch_count']} switches"
        outcomes = {o["strategy"]: o for o in point["outcomes"]}
        require(
            sorted(outcomes) == sorted(STRATEGY_MATRIX_NAMES),
            f"{where}: expected one outcome per strategy, got {sorted(outcomes)}",
        )
        for outcome in point["outcomes"]:
            require_keys(
                outcome,
                ["strategy", "kind", "added_vcs", "cycles_broken", "mean_hops", "sim", "certify"],
                f"{where} outcome",
            )
            certify = outcome["certify"]
            require_keys(
                certify,
                ["verdict", "cdg_cyclic", "witness_worms", "search_steps"],
                f"{where} {outcome['strategy']} certify block",
            )
            require(
                certify["verdict"] == "certified-free",
                f"{where}: {outcome['strategy']} produced a repaired design the "
                f"certified verifier rates {certify['verdict']!r}, not certified-free",
            )
        require(
            outcomes["escape-channel"]["cycles_broken"] == 0,
            f"{where}: escape-channel avoidance must break zero cycles",
        )
        require(
            outcomes["recovery-reconfig"]["added_vcs"] == 0,
            f"{where}: recovery reconfiguration must add zero VCs",
        )
        require(
            outcomes["cycle-breaking"]["added_vcs"] <= outcomes["resource-ordering"]["added_vcs"],
            f"{where}: removal must not need more VCs than resource ordering",
        )
        require(
            outcomes["recovery-reconfig"]["mean_hops"] >= point["mean_hops"] - 1e-9,
            f"{where}: recovery routes cannot be shorter than the shortest-path input",
        )


def check_sim_strategies(data):
    require_keys(data, ["injection_gaps", "policies", "points"], "fig_sim_strategies data")
    require(
        data["policies"] == SIM_STRATEGY_POLICIES,
        f"policy list must be {SIM_STRATEGY_POLICIES}, got {data['policies']}",
    )
    gaps = data["injection_gaps"]
    require(isinstance(gaps, list) and gaps, "injection_gaps must be a non-empty list")
    points = data["points"]
    require(isinstance(points, list) and points, "fig_sim_strategies must contain sweep points")
    benchmarks = {p["benchmark"] for p in points}
    require(
        {"D26_media", "D36_8"} <= benchmarks,
        f"the sweep must cover the Figure 8 and Figure 9 benchmarks, got {sorted(benchmarks)}",
    )
    baseline_deadlock_points = 0
    for point in points:
        require_keys(
            point,
            [
                "benchmark",
                "switch_count",
                "active_flows",
                "baseline_cdg_cyclic",
                "stress_flows",
                "series",
            ],
            "fig_sim_strategies point",
        )
        where = f"{point['benchmark']} @ {point['switch_count']} switches"
        series = {s["policy"]: s for s in point["series"]}
        require(
            sorted(series) == sorted(SIM_STRATEGY_POLICIES),
            f"{where}: expected one series per policy, got {sorted(series)}",
        )
        for entry in point["series"]:
            require(
                [r["mean_gap_cycles"] for r in entry["rates"]] == gaps,
                f"{where} {entry['policy']}: rates must cover every swept gap",
            )
            for rate in entry["rates"]:
                require_keys(
                    rate,
                    [
                        "mean_gap_cycles",
                        "stats",
                        "detected_by",
                        "recovery_events",
                        "packets_drained",
                        "flows_reconfigured",
                    ],
                    f"{where} {entry['policy']} rate",
                )
                require_keys(
                    rate["stats"],
                    [
                        "injected",
                        "delivered",
                        "deadlocked",
                        "mean_latency",
                        "p50_latency",
                        "p95_latency",
                        "p99_latency",
                        "max_latency",
                        "throughput",
                        "cycles",
                    ],
                    f"{where} {entry['policy']} stats",
                )
        # The headline invariant: every deadlock-handling policy delivers
        # 100% of packets deadlock-free at every swept injection rate.
        for policy, entry in series.items():
            if policy == "unsafe-single-vc":
                continue
            for rate in entry["rates"]:
                stats = rate["stats"]
                require(
                    stats["deadlocked"] is False,
                    f"{where}: {policy} deadlocked at gap {rate['mean_gap_cycles']}",
                )
                require(
                    stats["delivered"] == stats["injected"],
                    f"{where}: {policy} delivered {stats['delivered']}/{stats['injected']} "
                    f"at gap {rate['mean_gap_cycles']}",
                )
        # The control group: the unsafe baseline can only deadlock where
        # the base CDG is cyclic, every deadlock must be established by the
        # exact wait-for-graph detector, and wherever it deadlocks the
        # DBR-style drain must have fired (and still delivered 100%).
        unsafe = series["unsafe-single-vc"]
        recovery = series["recovery-reconfig"]
        deadlocked_rates = [r for r in unsafe["rates"] if r["stats"]["deadlocked"]]
        if not point["baseline_cdg_cyclic"]:
            require(
                not deadlocked_rates,
                f"{where}: acyclic baseline CDG cannot deadlock, but the unsafe run did",
            )
        for rate in deadlocked_rates:
            require(
                rate["detected_by"] == "wait-for-graph",
                f"{where}: unsafe deadlock at gap {rate['mean_gap_cycles']} "
                f"was established by {rate['detected_by']}, not the exact detector",
            )
        for unsafe_rate, recovery_rate in zip(unsafe["rates"], recovery["rates"]):
            if unsafe_rate["stats"]["deadlocked"]:
                require(
                    recovery_rate["recovery_events"] >= 1,
                    f"{where}: unsafe run deadlocked at gap "
                    f"{unsafe_rate['mean_gap_cycles']} but the dynamic drain never fired",
                )
        if deadlocked_rates:
            baseline_deadlock_points += 1
    require(
        baseline_deadlock_points > 0,
        "no grid point shows the unsafe single-VC baseline deadlocking — "
        "the experiment's control group is vacuous",
    )


FAULT_STRATEGIES = [
    "cycle-breaking",
    "resource-ordering",
    "escape-channel",
    "recovery-reconfig",
]

FAULT_STATS_KEYS = [
    "faults_injected",
    "reconfig_events",
    "epochs_committed",
    "cyclic_commits",
    "drain_fallbacks",
    "packets_drained",
    "flows_rerouted",
    "unreachable_flows",
    "unreachable_packets",
    "injected",
    "delivered",
    "delivered_fraction",
    "mean_latency",
    "connected",
    "deadlocked",
]


def check_fig_faults(data, max_wall_ms):
    require_keys(data, ["strategies", "wall_ms", "points"], "fig_faults data")
    require(
        data["strategies"] == FAULT_STRATEGIES,
        f"strategy list must be {FAULT_STRATEGIES}, got {data['strategies']}",
    )
    points = data["points"]
    require(isinstance(points, list) and points, "fig_faults must contain sweep points")
    benchmarks = {p["benchmark"] for p in points}
    require(
        {"D26_media", "D36_8"} <= benchmarks,
        f"the sweep must cover the Figure 8 and Figure 9 benchmarks, got {sorted(benchmarks)}",
    )
    fallbacks_exercised = 0
    for point in points:
        require_keys(
            point,
            ["benchmark", "switch_count", "active_flows", "faults_injected", "connected", "runs"],
            "fig_faults point",
        )
        where = f"{point['benchmark']} @ {point['switch_count']} switches"
        require(
            point["faults_injected"] >= 1,
            f"{where}: the storm scheduled no failures — the point is vacuous",
        )
        require(
            [r["strategy"] for r in point["runs"]] == FAULT_STRATEGIES,
            f"{where}: expected one run per strategy in order, "
            f"got {[r['strategy'] for r in point['runs']]}",
        )
        for run in point["runs"]:
            require_keys(run, ["strategy", "added_vcs", "stats"], f"{where} run")
            stats = run["stats"]
            require_keys(stats, FAULT_STATS_KEYS, f"{where} {run['strategy']} stats")
            label = f"{where}: {run['strategy']}"
            # The protocol's core guarantee: no epoch ever commits a cyclic
            # combined dependency graph, and no run ends deadlocked.
            require(
                stats["cyclic_commits"] == 0,
                f"{label} committed {stats['cyclic_commits']} cyclic epoch(s)",
            )
            require(stats["deadlocked"] is False, f"{label} deadlocked through the storm")
            require(
                stats["faults_injected"] == point["faults_injected"],
                f"{label}: per-run fault count disagrees with the point",
            )
            require(
                stats["connected"] == point["connected"],
                f"{label}: per-run connectivity disagrees with the point",
            )
            require(
                stats["epochs_committed"] >= 1,
                f"{label}: the storm must commit at least one epoch",
            )
            require(
                stats["epochs_committed"] <= stats["reconfig_events"],
                f"{label}: more epochs committed than reconfiguration events",
            )
            # Fallback accounting: scoped drains are counted per epoch.
            require(
                stats["drain_fallbacks"] <= stats["epochs_committed"],
                f"{label}: more drain fallbacks than committed epochs",
            )
            fallbacks_exercised += stats["drain_fallbacks"]
            # Survivability: the delivered fraction is consistent, and a
            # storm that keeps the fabric connected loses nothing.
            require(
                0.0 <= stats["delivered_fraction"] <= 1.0,
                f"{label}: delivered fraction {stats['delivered_fraction']} out of range",
            )
            if stats["injected"] > 0:
                recomputed = stats["delivered"] / stats["injected"]
                require(
                    abs(stats["delivered_fraction"] - recomputed) < 1e-9,
                    f"{label}: delivered fraction {stats['delivered_fraction']} "
                    f"!= delivered/injected {recomputed}",
                )
            if point["connected"]:
                require(
                    stats["delivered"] > 0,
                    f"{label} delivered nothing through a connected storm",
                )
                require(
                    stats["unreachable_flows"] == 0,
                    f"{label}: connected storm left {stats['unreachable_flows']} "
                    "flow(s) unreachable",
                )
    require(
        fallbacks_exercised > 0,
        "no run ever took the scoped-drain fallback — the protocol's hard "
        "path is untested by this sweep",
    )
    if max_wall_ms is not None:
        require(
            data["wall_ms"] <= max_wall_ms,
            f"timing regression: the fault sweep took {data['wall_ms']:.0f} ms "
            f"(allowed {max_wall_ms:.0f} ms)",
        )


def check_conservatism(data):
    require_keys(data, ["benchmarks"], "fig_conservatism data")
    groups = data["benchmarks"]
    require(isinstance(groups, list) and groups, "fig_conservatism must contain benchmark groups")
    names = {g.get("benchmark") for g in groups}
    require(
        {"D26_media", "D36_8", "random"} <= names,
        f"the sweep must cover both figure grids plus the random population, got {sorted(names)}",
    )
    for group in groups:
        require_keys(
            group,
            [
                "benchmark",
                "cyclic_points",
                "certified_deadlockable",
                "certified_free_cyclic",
                "unknown",
                "gap_vcs",
                "witness_attempts",
                "witness_realized",
                "points",
            ],
            "fig_conservatism group",
        )
        name = group["benchmark"]
        points = group["points"]
        require(isinstance(points, list) and points, f"{name}: group has no points")
        cyclic = [p for p in points if p["cdg_cyclic"]]
        for point in points:
            require_keys(
                point,
                [
                    "benchmark",
                    "switch_count",
                    "active_flows",
                    "cdg_cyclic",
                    "verdict",
                    "witness_worms",
                    "search_steps",
                    "removal_vcs",
                    "runtime_deadlocked",
                    "wait_for_graph_fired",
                    "witness_attempted",
                    "witness_realized",
                ],
                f"{name} point",
            )
            where = f"{name} @ {point['switch_count']} switches"
            require(
                point["verdict"] in CERTIFY_VERDICTS,
                f"{where}: unknown verdict {point['verdict']!r}",
            )
            # The sound lattice: CDG acyclic ⇒ certified free ⇒ the exact
            # runtime detector never fires.  Any inversion is a verifier bug.
            if not point["cdg_cyclic"]:
                require(
                    point["verdict"] == "certified-free",
                    f"{where}: acyclic CDG but verdict {point['verdict']!r}",
                )
            if point["verdict"] == "certified-free":
                require(
                    point["runtime_deadlocked"] is False,
                    f"{where}: certified-free design deadlocked at runtime",
                )
                require(
                    point["wait_for_graph_fired"] is False,
                    f"{where}: certified-free design tripped the exact detector",
                )
            if point["verdict"] == "certified-deadlockable":
                require(
                    point["witness_worms"] >= 1,
                    f"{where}: deadlockable verdict without witness worms",
                )
                require(
                    point["witness_attempted"] is True,
                    f"{where}: deadlockable verdict but no witness replay",
                )
        # Conservatism-gap accounting: counts must tile the cyclic points.
        require(
            0 <= group["certified_free_cyclic"] <= group["cyclic_points"],
            f"{name}: gap count {group['certified_free_cyclic']} outside "
            f"[0, {group['cyclic_points']}]",
        )
        require(
            group["cyclic_points"] == len(cyclic),
            f"{name}: cyclic_points {group['cyclic_points']} != recount {len(cyclic)}",
        )
        require(
            group["certified_deadlockable"]
            + group["certified_free_cyclic"]
            + group["unknown"]
            == group["cyclic_points"],
            f"{name}: verdict counts do not tile the cyclic points",
        )
        require(group["gap_vcs"] >= 0, f"{name}: negative gap_vcs")
        require(
            group["witness_realized"] <= group["witness_attempts"],
            f"{name}: more witnesses realized than replays attempted",
        )
    # The population must exercise the interesting region of the lattice:
    # at least one group must contain cyclic (and deadlockable) designs,
    # otherwise the agreement checks above are vacuous.
    require(
        any(g["cyclic_points"] > 0 for g in groups),
        "no group contains a cyclic design — the conservatism sweep is vacuous",
    )
    require(
        any(g["certified_deadlockable"] > 0 for g in groups),
        "no group contains a certified-deadlockable design — the witness path is untested",
    )


# Every trace must carry the root span's category plus at least one of the
# work categories — a trace with a root and no attributed work means the
# instrumentation seam came unplugged somewhere.
TRACE_WORK_CATEGORIES = {"stage", "sweep", "removal", "sim", "jobs", "scc", "timing"}


def check_noc_trace(artifact, min_attribution):
    """The Chrome-trace telemetry artifact: a schema-v8 envelope whose
    document also carries a `traceEvents` array (Perfetto ignores the
    envelope keys, the envelope parser ignores `traceEvents`)."""
    data = artifact["data"]
    require_keys(
        data,
        ["source", "span_count", "dropped_spans", "phases", "counters", "histograms", "threads"],
        "noc_trace data",
    )
    require("traceEvents" in artifact, "noc_trace document must carry a traceEvents array")
    events = artifact["traceEvents"]
    require(isinstance(events, list) and events, "traceEvents must be a non-empty array")

    spans = []
    seqs = set()
    for event in events:
        require(isinstance(event, dict), "every trace event must be an object")
        phase = event.get("ph")
        require(phase in ("M", "X"), f"unexpected event phase {phase!r}")
        if phase == "M":
            require_keys(event, ["name", "pid", "tid", "args"], "metadata event")
            continue
        require_keys(
            event, ["name", "cat", "ph", "ts", "dur", "pid", "tid", "seq", "parent"], "span event"
        )
        for key in ("ts", "dur", "tid", "seq", "parent"):
            require(
                isinstance(event[key], int) and event[key] >= 0,
                f"span event {key} must be a non-negative integer, got {event[key]!r}",
            )
        require(event["seq"] not in seqs, f"duplicate span sequence number {event['seq']}")
        seqs.add(event["seq"])
        spans.append(event)
    require(spans, "trace has no complete (ph == X) span events")
    require(
        data["span_count"] == len(spans),
        f"data.span_count {data['span_count']} != {len(spans)} recorded span events",
    )

    # Timestamps must be monotone per thread in file order (the writer
    # sorts by start time, so a violation means a broken clock or sort).
    last_ts = {}
    for event in spans:
        tid = event["tid"]
        require(
            last_ts.get(tid, 0) <= event["ts"],
            f"thread {tid} timestamps go backwards at seq {event['seq']}",
        )
        last_ts[tid] = event["ts"]

    categories = {event["cat"] for event in spans}
    require("figure" in categories, "trace has no root 'figure' span")
    require(
        categories & TRACE_WORK_CATEGORIES,
        f"trace has no work-phase spans; categories present: {sorted(categories)}",
    )

    if min_attribution is not None:
        root = max(
            (e for e in spans if e["parent"] == 0), key=lambda e: (e["dur"], -e["seq"])
        )
        window = (root["ts"], root["ts"] + root["dur"])
        intervals = sorted(
            (max(e["ts"], window[0]), min(e["ts"] + e["dur"], window[1]))
            for e in spans
            if e["seq"] != root["seq"]
        )
        covered, cursor = 0, window[0]
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        attribution = covered / root["dur"] if root["dur"] else 1.0
        require(
            attribution >= min_attribution,
            f"only {100 * attribution:.1f}% of the root span's wall time is "
            f"attributed to named phases (required {100 * min_attribution:.1f}%)",
        )


CHECKS = {
    "fig8_d26_media": lambda data, _: check_vc_sweep(data, "fig8"),
    "fig9_d36_8": lambda data, _: check_vc_sweep(data, "fig9"),
    "fig10_power": lambda data, _: check_fig10(data),
    "summary_table": lambda data, _: check_summary(data),
    "sim_validation": lambda data, _: check_sim_validation(data),
    "cdg_incremental": check_cdg_incremental,
    "fig_scale": check_fig_scale,
    "fig_strategy_matrix": lambda data, _: check_strategy_matrix(data),
    "fig_sim_strategies": lambda data, _: check_sim_strategies(data),
    "fig_conservatism": lambda data, _: check_conservatism(data),
    "fig_faults": check_fig_faults,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="path to a figure JSON artifact")
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=None,
        metavar="T",
        help="for cdg_incremental / fig_scale: fail if the incremental-over-reference timing ratio exceeds 1 + T",
    )
    parser.add_argument(
        "--max-wall-ms",
        type=float,
        default=None,
        metavar="W",
        help="for fig_faults: fail if the recorded sweep wall time exceeds W milliseconds",
    )
    parser.add_argument(
        "--min-attribution",
        type=float,
        default=None,
        metavar="F",
        help="for noc_trace: fail if less than fraction F of the root span's "
        "wall time is covered by named phase spans",
    )
    args = parser.parse_args()

    with open(args.artifact) as handle:
        artifact = json.load(handle)

    try:
        require_keys(artifact, ["figure", "schema", "data"], "artifact envelope")
        figure = artifact["figure"]
        require(
            artifact["schema"] == SCHEMA_VERSION,
            f"schema version {artifact['schema']} != expected {SCHEMA_VERSION}",
        )
        if figure == "noc_trace":
            # The trace check needs the whole document: its events live
            # beside the envelope, not inside data.
            check_noc_trace(artifact, args.min_attribution)
        else:
            check = CHECKS.get(figure)
            require(check is not None, f"unknown figure name {figure!r}; known: {sorted(CHECKS)}")
            # The second argument is the figure's guard option: the recorded
            # wall-time bound for fig_faults, the timing ratio for the rest.
            guard = args.max_wall_ms if figure == "fig_faults" else args.timing_tolerance
            check(artifact["data"], guard)
    except CheckError as error:
        print(f"{args.artifact}: FAIL — {error}", file=sys.stderr)
        return 1
    print(f"{args.artifact}: ok ({artifact['figure']}, schema {artifact['schema']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
