#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Persistent, resumable evaluation jobs for the design-space sweeps.
//!
//! Every figure of the reproduction is a grid of independent tasks —
//! (grid point × strategy × policy) units.  This crate turns such a grid
//! into a **job**: a JSON spec ([`spec::JobRequest`]) identified by the
//! SHA-256 digest of its canonical form, executed task-by-task through a
//! [`runner::JobRunner`] that appends one durable completion record per
//! finished task to an on-disk [`store::JobStore`].  Kill the process at
//! any point and a rerun replays the recorded results and computes only
//! the missing tasks — the committed artifact is byte-identical to an
//! uninterrupted run, because both assemble from the same recorded result
//! text.  An optional [`cache::ArtifactCache`] shares task results
//! *across* job directories, so re-submitting an identical design performs
//! zero recomputation.
//!
//! The crate is deliberately figure-agnostic: what a task *is* comes from
//! a [`source::JobSource`] implementation (the figure-specific sources
//! live in `noc-bench`, next to the sweep harness; the `noc_serve` binary
//! there speaks newline-delimited JSON jobs over stdin/stdout and a spool
//! directory).  Everything here builds on `noc_flow::json` and the
//! standard library only — no network, no external dependencies.

pub mod cache;
pub mod digest;
pub mod error;
pub mod runner;
pub mod source;
pub mod spec;
pub mod store;

pub use cache::ArtifactCache;
pub use error::JobError;
pub use runner::{task_digest, task_key, JobArtifact, JobReport, JobRunner, RunStats};
pub use source::{AssembleContext, JobSource};
pub use spec::JobRequest;
pub use store::{JobStore, TaskRecord};
