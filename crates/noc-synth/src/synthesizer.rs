//! End-to-end topology synthesis: clustering + interconnect + routing.

use crate::cluster::{cluster_cores, Clustering};
use crate::connect::{build_interconnect, Backbone, ConnectConfig};
use noc_routing::shortest::{route_all_with_cost, LinkCost};
use noc_routing::{RouteError, RouteSet};
use noc_topology::{CommGraph, CoreId, CoreMap, Topology, TopologyError};
use std::error::Error;
use std::fmt;

/// Configuration of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Number of switches to build.
    pub switch_count: usize,
    /// Backbone shape for the switch interconnect.
    pub backbone: Backbone,
    /// Maximum switch degree (neighbouring switches).
    pub max_degree: usize,
    /// Bandwidth of every opened link.
    pub link_bandwidth: f64,
    /// Cost model for the deadlock-oblivious input routing.
    pub link_cost: LinkCost,
}

impl SynthesisConfig {
    /// A configuration with the given switch count and default parameters.
    pub fn with_switches(switch_count: usize) -> Self {
        SynthesisConfig {
            switch_count,
            backbone: Backbone::SpanningTree,
            max_degree: 4,
            link_bandwidth: 2000.0,
            link_cost: LinkCost::Hops,
        }
    }

    /// Same, but with a ring backbone (more prone to CDG cycles, like the
    /// paper's Figure 1 example).
    pub fn with_switches_ring(switch_count: usize) -> Self {
        SynthesisConfig {
            backbone: Backbone::Ring,
            ..Self::with_switches(switch_count)
        }
    }
}

/// A fully synthesized design: the triple the deadlock analysis consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedDesign {
    /// The application-specific topology.
    pub topology: Topology,
    /// Core-to-switch attachment.
    pub core_map: CoreMap,
    /// Deadlock-oblivious shortest-path routes, one per flow.
    pub routes: RouteSet,
    /// The clustering the topology was derived from (kept for diagnostics
    /// and ablations).
    pub clustering: Clustering,
}

/// Errors reported by [`synthesize`].
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The requested configuration is invalid (e.g. zero switches).
    InvalidConfig(String),
    /// The synthesized topology could not route every flow.
    Routing(RouteError),
    /// An underlying topology-model error.
    Topology(TopologyError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidConfig(msg) => write!(f, "invalid synthesis config: {msg}"),
            SynthesisError::Routing(e) => write!(f, "routing failed: {e}"),
            SynthesisError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Routing(e) => Some(e),
            SynthesisError::Topology(e) => Some(e),
            SynthesisError::InvalidConfig(_) => None,
        }
    }
}

impl From<RouteError> for SynthesisError {
    fn from(e: RouteError) -> Self {
        SynthesisError::Routing(e)
    }
}

impl From<TopologyError> for SynthesisError {
    fn from(e: TopologyError) -> Self {
        SynthesisError::Topology(e)
    }
}

/// Synthesizes an application-specific topology, core attachment and
/// deadlock-oblivious routes for `comm`.
///
/// This is the substitute for the paper's external synthesis tool \[9\]: the
/// deadlock-removal algorithm and the resource-ordering baseline only care
/// that they receive *some* application-specific `TG(S, L)`, `G(V, E)`
/// mapping and route set per switch count.
///
/// # Errors
///
/// * [`SynthesisError::InvalidConfig`] when `switch_count` is zero or larger
///   than the number of cores.
/// * [`SynthesisError::Routing`] when a flow cannot be routed on the
///   generated interconnect (should not happen for connected interconnects).
pub fn synthesize(
    comm: &CommGraph,
    config: &SynthesisConfig,
) -> Result<SynthesizedDesign, SynthesisError> {
    if config.switch_count == 0 {
        return Err(SynthesisError::InvalidConfig(
            "switch count must be positive".into(),
        ));
    }
    if config.switch_count > comm.core_count() {
        return Err(SynthesisError::InvalidConfig(format!(
            "switch count {} exceeds core count {}",
            config.switch_count,
            comm.core_count()
        )));
    }
    if config.max_degree < 2 {
        return Err(SynthesisError::InvalidConfig(
            "max degree must be at least 2".into(),
        ));
    }

    let clustering = cluster_cores(comm, config.switch_count);
    let interconnect = build_interconnect(
        comm,
        &clustering,
        &ConnectConfig {
            backbone: config.backbone,
            max_degree: config.max_degree,
            link_bandwidth: config.link_bandwidth,
        },
    );

    let mut core_map = CoreMap::new(comm.core_count());
    for (core, _) in comm.cores() {
        let cluster = clustering.cluster_of(core);
        core_map.assign(core, interconnect.switches[cluster])?;
    }

    let routes = route_all_with_cost(&interconnect.topology, comm, &core_map, config.link_cost)?;

    Ok(SynthesizedDesign {
        topology: interconnect.topology,
        core_map,
        routes,
        clustering,
    })
}

/// Convenience: does any core end up alone on a switch?  (Used in tests and
/// diagnostics; isolated cores waste switch area.)
pub fn has_singleton_switch(design: &SynthesizedDesign) -> bool {
    (0..design.clustering.switch_count).any(|c| design.clustering.members(c).len() == 1)
}

/// Returns the switch a core was attached to; small helper used by examples.
pub fn switch_of(design: &SynthesizedDesign, core: CoreId) -> Option<noc_topology::SwitchId> {
    design.core_map.switch_of(core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::validate::validate_routes;
    use noc_topology::benchmarks::Benchmark;
    use noc_topology::validate::validate_design;

    #[test]
    fn synthesized_designs_are_consistent() {
        for benchmark in Benchmark::ALL {
            let comm = benchmark.comm_graph();
            for switches in [4, 9, 14] {
                let design = synthesize(&comm, &SynthesisConfig::with_switches(switches))
                    .unwrap_or_else(|e| panic!("{benchmark} {switches}: {e}"));
                assert_eq!(design.topology.switch_count(), switches);
                validate_design(&design.topology, &comm, &design.core_map).unwrap();
                validate_routes(&design.topology, &comm, &design.core_map, &design.routes).unwrap();
            }
        }
    }

    #[test]
    fn ring_backbone_also_routes_everything() {
        let comm = Benchmark::D26Media.comm_graph();
        let design = synthesize(&comm, &SynthesisConfig::with_switches_ring(8)).unwrap();
        validate_routes(&design.topology, &comm, &design.core_map, &design.routes).unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let comm = Benchmark::D26Media.comm_graph();
        assert!(matches!(
            synthesize(&comm, &SynthesisConfig::with_switches(0)),
            Err(SynthesisError::InvalidConfig(_))
        ));
        assert!(matches!(
            synthesize(&comm, &SynthesisConfig::with_switches(100)),
            Err(SynthesisError::InvalidConfig(_))
        ));
        let bad_degree = SynthesisConfig {
            max_degree: 1,
            ..SynthesisConfig::with_switches(5)
        };
        assert!(matches!(
            synthesize(&comm, &bad_degree),
            Err(SynthesisError::InvalidConfig(_))
        ));
    }

    #[test]
    fn more_switches_means_longer_routes_on_average() {
        let comm = Benchmark::D36x8.comm_graph();
        let small = synthesize(&comm, &SynthesisConfig::with_switches(4)).unwrap();
        let large = synthesize(&comm, &SynthesisConfig::with_switches(18)).unwrap();
        assert!(large.routes.mean_hops() >= small.routes.mean_hops());
    }

    #[test]
    fn single_switch_design_has_empty_routes() {
        let comm = Benchmark::D26Media.comm_graph();
        let design = synthesize(&comm, &SynthesisConfig::with_switches(1)).unwrap();
        assert_eq!(design.routes.max_hops(), 0);
        assert!(!has_singleton_switch(&design) || comm.core_count() == 1);
    }

    #[test]
    fn error_display_mentions_the_cause() {
        let comm = Benchmark::D26Media.comm_graph();
        let err = synthesize(&comm, &SynthesisConfig::with_switches(0)).unwrap_err();
        assert!(err.to_string().contains("switch count"));
    }

    #[test]
    fn switch_of_matches_core_map() {
        let comm = Benchmark::D26Media.comm_graph();
        let design = synthesize(&comm, &SynthesisConfig::with_switches(6)).unwrap();
        for (core, _) in comm.cores() {
            assert_eq!(switch_of(&design, core), design.core_map.switch_of(core));
        }
    }
}
