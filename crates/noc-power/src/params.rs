//! Technology and architecture parameters of the power/area model.

/// Technology and micro-architecture parameters.
///
/// The default values describe a 65 nm-like switch running at 1 GHz with
/// 32-bit flits and 4-flit-deep VC buffers, in the same ballpark as the
/// ORION 2.0 defaults the paper used.  Only relative comparisons matter for
/// the reproduced figures.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Flit width in bits.
    pub flit_width_bits: usize,
    /// Depth of each VC input buffer in flits.
    pub buffer_depth_flits: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Area of one bit of buffer storage, in µm².
    pub buffer_bit_area_um2: f64,
    /// Area of one crossbar crosspoint per bit, in µm².
    pub crossbar_bit_area_um2: f64,
    /// Area of the arbiter per request pair, in µm².
    pub arbiter_pair_area_um2: f64,
    /// Energy of one buffer write + read, per bit, in pJ.
    pub buffer_access_energy_pj_per_bit: f64,
    /// Energy of one crossbar traversal, per bit, in pJ.
    pub crossbar_energy_pj_per_bit: f64,
    /// Energy of one arbitration, in pJ.
    pub arbitration_energy_pj: f64,
    /// Energy of driving one bit over one inter-switch link, in pJ.
    pub link_energy_pj_per_bit: f64,
    /// Leakage power per µm² of switch area, in mW.
    pub leakage_mw_per_um2: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            flit_width_bits: 32,
            buffer_depth_flits: 4,
            frequency_mhz: 1000.0,
            buffer_bit_area_um2: 1.5,
            crossbar_bit_area_um2: 0.6,
            arbiter_pair_area_um2: 12.0,
            buffer_access_energy_pj_per_bit: 0.012,
            crossbar_energy_pj_per_bit: 0.006,
            arbitration_energy_pj: 0.4,
            link_energy_pj_per_bit: 0.02,
            // Calibrated so that static (leakage) power is a realistic
            // fraction of total NoC power at 65 nm; this is what makes idle
            // VC buffers — the resource-ordering overhead — visible in
            // Figure 10, as they are under ORION 2.0.
            leakage_mw_per_um2: 1.0e-4,
        }
    }
}

impl TechParams {
    /// Bits stored by one VC buffer.
    pub fn buffer_bits(&self) -> usize {
        self.flit_width_bits * self.buffer_depth_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_consistent() {
        let p = TechParams::default();
        assert!(p.flit_width_bits > 0);
        assert!(p.buffer_depth_flits > 0);
        assert!(p.frequency_mhz > 0.0);
        assert_eq!(p.buffer_bits(), 128);
    }

    #[test]
    fn buffer_bits_scales_with_width_and_depth() {
        let p = TechParams {
            flit_width_bits: 64,
            buffer_depth_flits: 8,
            ..TechParams::default()
        };
        assert_eq!(p.buffer_bits(), 512);
    }
}
