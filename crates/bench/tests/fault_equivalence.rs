//! The cross-strategy fault-equivalence harness: every deadlock-handling
//! strategy's repaired design is pushed through the *same* seeded
//! three-link-failure storm (the `fig_faults` configuration) on every
//! feasible Figure 8 (D26_media) and Figure 9 (D36_8) grid point, with the
//! route table snapshotted after every live-reconfiguration epoch
//! (`record_reconfig_routes`), and the harness hard-fails unless
//!
//! * every run survives the storm — no deadlock, no cyclic epoch commit —
//!   regardless of which strategy repaired the design, and
//! * every committed route table *re-verifies* under the static checker
//!   ([`noc_deadlock::verify::check_deadlock_free`]): the runtime protocol
//!   and the static verifier must agree after every epoch, not just on the
//!   initial design, and
//! * the sweep is deterministic across executors — the serial and the
//!   threaded sweep produce byte-identical points.

use noc_bench::{
    fault_run_outcome, fault_strategy_designs, fault_strategy_point, fault_sweep_grid,
    fault_sweep_storm, fault_sweep_traffic, FaultSweepPoint,
};
use noc_deadlock::verify::check_deadlock_free;
use noc_sim::{FaultPlan, VcSimConfig};
use noc_topology::benchmarks::Benchmark;

/// The `fig_faults` engine configuration plus per-epoch route snapshots.
fn recording_config() -> VcSimConfig {
    VcSimConfig {
        buffer_depth: 1,
        max_cycles: 600_000,
        record_reconfig_routes: true,
        ..VcSimConfig::default()
    }
}

/// Runs one grid point's storm under every strategy and re-verifies each
/// committed route table statically.
fn assert_epochs_reverify(benchmark: Benchmark, switch_count: usize) {
    let routed = noc_bench::routed_benchmark(benchmark, switch_count);
    let storm = fault_sweep_storm(benchmark, switch_count);
    let plan = FaultPlan::storm(routed.topology(), &storm);
    let traffic = fault_sweep_traffic(benchmark, switch_count);
    let config = recording_config();
    for fixed in fault_strategy_designs(&routed) {
        let label = format!("{benchmark}/{switch_count}/{}", fixed.resolution().strategy);
        let outcome = fault_run_outcome(&fixed, &plan, &traffic, &config);
        assert!(!outcome.deadlocked, "{label}: deadlocked through the storm");
        assert_eq!(
            outcome.reconfig.cyclic_commits, 0,
            "{label}: an epoch committed a cyclic combined graph"
        );
        assert_eq!(
            outcome.reconfig_routes.len(),
            outcome.reconfig.epochs_committed,
            "{label}: one route snapshot per committed epoch"
        );
        assert!(
            !outcome.reconfig_routes.is_empty(),
            "{label}: the storm must commit at least one epoch"
        );
        for (epoch, snapshot) in outcome.reconfig_routes.iter().enumerate() {
            if let Err(cycle) = check_deadlock_free(fixed.topology(), snapshot) {
                panic!(
                    "{label}: the route table committed by epoch {epoch} fails \
                     static re-verification with CDG cycle {cycle:?}"
                );
            }
        }
    }
}

#[test]
fn every_committed_epoch_reverifies_on_the_benchmark_grids() {
    let grid = fault_sweep_grid();
    noc_flow::executor::parallel_map_ordered(&grid, 0, |&(benchmark, switch_count)| {
        assert_epochs_reverify(benchmark, switch_count)
    });
}

#[test]
fn serial_and_threaded_fault_sweeps_are_byte_identical() {
    // A spread of both benchmark grids, kept small because the points run
    // twice; determinism does not depend on the point, only on the seeding.
    let subset: Vec<(Benchmark, usize)> = fault_sweep_grid().into_iter().step_by(9).collect();
    assert!(subset.len() >= 4, "subset must span both grids");
    let serial: Vec<FaultSweepPoint> = subset
        .iter()
        .map(|&(benchmark, switch_count)| fault_strategy_point(benchmark, switch_count))
        .collect();
    let threaded =
        noc_flow::executor::parallel_map_ordered(&subset, 3, |&(benchmark, switch_count)| {
            fault_strategy_point(benchmark, switch_count)
        });
    assert_eq!(
        serial, threaded,
        "the fault sweep must be deterministic across executors"
    );
}
