//! Consistency checks across topology, communication graph and core mapping.

use crate::comm::{CommGraph, CoreMap};
use crate::error::TopologyError;
use crate::topology::Topology;
use noc_graph::{shortest_path, NodeId};

/// Checks that the design triple (topology, communication graph, core map)
/// is internally consistent:
///
/// 1. every core is mapped to an existing switch,
/// 2. for every flow there exists at least one directed switch-level path
///    from the source core's switch to the destination core's switch.
///
/// # Errors
///
/// Returns the first violation found as a [`TopologyError`].
pub fn validate_design(
    topology: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
) -> Result<(), TopologyError> {
    // 1. Mapping completeness and validity.
    for (core, _) in comm.cores() {
        let switch = map.require(core)?;
        if topology.switch(switch).is_none() {
            return Err(TopologyError::UnknownSwitch(switch));
        }
    }
    // 2. Reachability per flow.
    let graph = topology.to_switch_graph();
    for (_, flow) in comm.flows() {
        let from = map.require(flow.source)?;
        let to = map.require(flow.destination)?;
        if from == to {
            continue; // same switch: traffic never enters the network
        }
        let sp = shortest_path::hop_distances(&graph, NodeId::from_index(from.index()));
        if sp.distance(NodeId::from_index(to.index())).is_none() {
            return Err(TopologyError::Disconnected { from, to });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ids::{CoreId, SwitchId};

    fn simple_design() -> (Topology, CommGraph, CoreMap) {
        let generated = generators::bidirectional_ring(4, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 10.0);
        let mut map = CoreMap::new(comm.core_count());
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        (generated.topology, comm, map)
    }

    #[test]
    fn valid_design_passes() {
        let (t, c, m) = simple_design();
        assert!(validate_design(&t, &c, &m).is_ok());
    }

    #[test]
    fn unmapped_core_is_reported() {
        let (t, c, _) = simple_design();
        let empty = CoreMap::new(c.core_count());
        assert_eq!(
            validate_design(&t, &c, &empty),
            Err(TopologyError::UnmappedCore(CoreId::from_index(0)))
        );
    }

    #[test]
    fn mapping_to_missing_switch_is_reported() {
        let (t, c, mut m) = simple_design();
        m.assign(CoreId::from_index(0), SwitchId::from_index(99))
            .unwrap();
        assert_eq!(
            validate_design(&t, &c, &m),
            Err(TopologyError::UnknownSwitch(SwitchId::from_index(99)))
        );
    }

    #[test]
    fn disconnected_flow_is_reported() {
        // Two isolated switches.
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let mut c = CommGraph::new();
        let a = c.add_core("a");
        let b = c.add_core("b");
        c.add_flow(a, b, 1.0);
        let mut m = CoreMap::new(2);
        m.assign(a, s0).unwrap();
        m.assign(b, s1).unwrap();
        assert_eq!(
            validate_design(&t, &c, &m),
            Err(TopologyError::Disconnected { from: s0, to: s1 })
        );
    }

    #[test]
    fn same_switch_flow_needs_no_path() {
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let mut c = CommGraph::new();
        let a = c.add_core("a");
        let b = c.add_core("b");
        c.add_flow(a, b, 1.0);
        let mut m = CoreMap::new(2);
        m.assign(a, s0).unwrap();
        m.assign(b, s0).unwrap();
        assert!(validate_design(&t, &c, &m).is_ok());
    }
}
