//! Error type shared by the topology-model crate.

use crate::ids::{CoreId, LinkId, SwitchId};
use std::error::Error;
use std::fmt;

/// Errors reported when constructing or validating topologies, communication
/// graphs and core attachments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A switch id does not belong to the topology.
    UnknownSwitch(SwitchId),
    /// A link id does not belong to the topology.
    UnknownLink(LinkId),
    /// A core id does not belong to the communication graph.
    UnknownCore(CoreId),
    /// A core has no switch attachment.
    UnmappedCore(CoreId),
    /// Two switches are not connected by any path, but a flow needs them to be.
    Disconnected {
        /// Switch the path must start from.
        from: SwitchId,
        /// Switch the path must reach.
        to: SwitchId,
    },
    /// A parameter was outside its valid range (e.g. zero switches).
    InvalidParameter(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::UnknownCore(c) => write!(f, "unknown core {c}"),
            TopologyError::UnmappedCore(c) => write!(f, "core {c} is not mapped to any switch"),
            TopologyError::Disconnected { from, to } => {
                write!(f, "no path from {from} to {to} in the topology")
            }
            TopologyError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TopologyError::UnknownSwitch(SwitchId::from_index(3));
        assert_eq!(e.to_string(), "unknown switch SW3");
        let e = TopologyError::Disconnected {
            from: SwitchId::from_index(0),
            to: SwitchId::from_index(1),
        };
        assert!(e.to_string().contains("no path"));
        let e = TopologyError::InvalidParameter("zero switches".into());
        assert!(e.to_string().contains("zero switches"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<T: Error + Send + Sync>() {}
        assert_error::<TopologyError>();
    }
}
