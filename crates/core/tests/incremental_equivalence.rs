//! Equivalence suite for the incremental CDG maintenance engine.
//!
//! The incremental removal loop ([`CdgMode::Incremental`]) must produce the
//! *same algorithmic outcome* as the from-scratch reference
//! ([`CdgMode::FullRebuild`]) — same cycles broken, in the same order, with
//! the same direction choices, VC costs and re-routed flow counts — on
//! every seeded benchmark grid point of the paper's Figures 8 and 9, plus a
//! family of random cycle-heavy designs.  This is the
//! incremental == full-rebuild pin that the formal-verification line of
//! work (Verbeek & Schmaltz) motivates: an incremental optimisation is only
//! admissible if it is observationally identical to the definition.

use noc_deadlock::removal::{remove_deadlocks, CdgMode, RemovalConfig};
use noc_deadlock::verify;
use noc_routing::{Route, RouteSet};
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::benchmarks::Benchmark;
use noc_topology::{FlowId, Topology};

/// Runs removal on clones of the design under the given CDG mode and
/// returns the report together with the repaired design.
fn run_mode(
    topology: &Topology,
    routes: &RouteSet,
    cdg_mode: CdgMode,
) -> (noc_deadlock::RemovalReport, Topology, RouteSet) {
    let mut topo = topology.clone();
    let mut routes = routes.clone();
    let config = RemovalConfig {
        cdg_mode,
        ..RemovalConfig::default()
    };
    let report = remove_deadlocks(&mut topo, &mut routes, &config).expect("removal succeeds");
    (report, topo, routes)
}

/// Asserts the two modes agree on one design: identical outcome report,
/// identical repaired topology cost and identical re-routed channel lists.
fn assert_modes_agree(topology: &Topology, routes: &RouteSet, label: &str) {
    let (inc_report, inc_topo, inc_routes) = run_mode(topology, routes, CdgMode::Incremental);
    let (ref_report, ref_topo, ref_routes) = run_mode(topology, routes, CdgMode::FullRebuild);

    assert!(
        inc_report.same_outcome(&ref_report),
        "{label}: incremental report diverged\nincremental: {inc_report:?}\nreference:   {ref_report:?}"
    );
    assert_eq!(
        inc_topo.extra_vc_count(),
        ref_topo.extra_vc_count(),
        "{label}: repaired topologies differ in VC count"
    );
    for flow in 0..inc_routes.flow_count() {
        let flow = FlowId::from_index(flow);
        let inc: Vec<_> = inc_routes
            .route(flow)
            .map(|r| r.channels().to_vec())
            .unwrap_or_default();
        let reference: Vec<_> = ref_routes
            .route(flow)
            .map(|r| r.channels().to_vec())
            .unwrap_or_default();
        assert_eq!(inc, reference, "{label}: route of {flow} differs");
    }
    verify::check_deadlock_free(&inc_topo, &inc_routes)
        .unwrap_or_else(|c| panic!("{label}: incremental result still cyclic: {c:?}"));

    // The maintenance diagnostics must reflect the mode that actually ran.
    assert_eq!(
        inc_report.cdg.full_builds, 1,
        "{label}: incremental rebuilds"
    );
    assert_eq!(
        ref_report.cdg.full_builds,
        ref_report.cycles_broken + 1,
        "{label}: reference builds once per iteration"
    );
    if inc_report.cycles_broken > 0 {
        assert!(inc_report.cdg.incremental(), "{label}: deltas not recorded");
        assert_eq!(
            inc_report.cdg.step_deltas.len(),
            inc_report.cycles_broken,
            "{label}: one delta per break"
        );
        assert_eq!(
            inc_report.cdg.channels_added(),
            inc_report.added_vcs,
            "{label}: every added VC enters the CDG exactly once"
        );
    }
}

/// Shards the grid across scoped worker threads (the test itself is the
/// slow part, not the assertion) and checks every point.
fn assert_grid_equivalence(benchmark: Benchmark, switch_counts: impl Iterator<Item = usize>) {
    let grid: Vec<usize> = switch_counts
        .filter(|&s| s > 0 && s <= benchmark.core_count())
        .collect();
    noc_flow::executor::parallel_map_ordered(&grid, 0, |&switches| {
        let comm = benchmark.comm_graph();
        let design = synthesize(&comm, &SynthesisConfig::with_switches(switches))
            .unwrap_or_else(|e| panic!("{benchmark}/{switches}: synthesis failed: {e}"));
        assert_modes_agree(
            &design.topology,
            &design.routes,
            &format!("{benchmark}/{switches}"),
        );
    });
}

/// Every Figure 8 grid point: D26_media, 5 to 25 switches.
#[test]
fn figure_8_grid_incremental_matches_full_rebuild() {
    assert_grid_equivalence(Benchmark::D26Media, 5..=25);
}

/// Every Figure 9 grid point: D36_8, 10 to 35 switches.
#[test]
fn figure_9_grid_incremental_matches_full_rebuild() {
    assert_grid_equivalence(Benchmark::D36x8, 10..=35);
}

/// Ring-backbone synthesis is the cycle-heavy stress shape: many breaks per
/// run, so many incremental deltas to get wrong.
#[test]
fn ring_backbone_designs_incremental_matches_full_rebuild() {
    for benchmark in [Benchmark::D36x8, Benchmark::D35Bott] {
        let comm = benchmark.comm_graph();
        for switches in [8, 12, 16] {
            let design = synthesize(&comm, &SynthesisConfig::with_switches_ring(switches))
                .expect("ring synthesis succeeds");
            assert_modes_agree(
                &design.topology,
                &design.routes,
                &format!("ring/{benchmark}/{switches}"),
            );
        }
    }
}

/// Seeded random unidirectional rings with chords and random multi-hop
/// flows: small adversarial designs with multiple overlapping CDG cycles.
#[test]
fn random_chorded_rings_incremental_matches_full_rebuild() {
    use noc_rng::SmallRng;
    let mut rng = SmallRng::seed_from_u64(0xD10C);
    for case in 0..24_u64 {
        let switches = rng.gen_range(4..9_usize);
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..switches)
            .map(|i| topo.add_switch(format!("s{i}")))
            .collect();
        let ring: Vec<_> = (0..switches)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % switches], 1.0))
            .collect();
        let chords = rng.gen_range(0..3_usize);
        let mut extra = Vec::new();
        for _ in 0..chords {
            let a = rng.gen_range(0..switches);
            let b = rng.gen_range(0..switches);
            if a != b {
                extra.push(topo.add_link(sw[a], sw[b], 1.0));
            }
        }
        let flows = rng.gen_range(3..9_usize);
        let mut routes = RouteSet::new(flows);
        for f in 0..flows {
            // A contiguous run of ring links, occasionally detouring over a
            // chord, gives multi-hop routes that stack cyclic dependencies.
            let start = rng.gen_range(0..switches);
            let hops = rng.gen_range(2..switches.max(3));
            let mut links = Vec::with_capacity(hops);
            for h in 0..hops {
                links.push(ring[(start + h) % switches]);
            }
            if !extra.is_empty() && rng.gen_range(0..4_usize) == 0 {
                links.push(extra[rng.gen_range(0..extra.len())]);
            }
            routes.set_route(FlowId::from_index(f), Route::from_links(links));
        }
        assert_modes_agree(&topo, &routes, &format!("random case {case}"));
    }
}
