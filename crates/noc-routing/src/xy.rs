//! Dimension-order (XY) routing for 2-D meshes.
//!
//! XY routing first travels along the X dimension (columns), then along the
//! Y dimension (rows).  On a mesh it is minimal and deadlock-free, which
//! makes it a useful sanity baseline: the CDG of an XY-routed mesh must be
//! acyclic, and the deadlock-removal algorithm must add zero VCs to it.

use crate::route::{Route, RouteSet};
use crate::validate::RouteError;
use noc_topology::{CommGraph, CoreMap, LinkId, SwitchId, Topology};

/// A mesh coordinate helper: maps the row-major switch list produced by
/// [`noc_topology::generators::mesh2d`] to (row, column) coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshCoords {
    rows: usize,
    cols: usize,
    switches: Vec<SwitchId>,
}

impl MeshCoords {
    /// Creates the coordinate map for a `rows × cols` mesh whose switches
    /// are listed in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `switches.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, switches: Vec<SwitchId>) -> Self {
        assert_eq!(switches.len(), rows * cols, "switch list must be row-major");
        MeshCoords {
            rows,
            cols,
            switches,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The switch at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> SwitchId {
        self.switches[row * self.cols + col]
    }

    /// The `(row, col)` position of `switch`, if it belongs to the mesh.
    pub fn position(&self, switch: SwitchId) -> Option<(usize, usize)> {
        self.switches
            .iter()
            .position(|&s| s == switch)
            .map(|i| (i / self.cols, i % self.cols))
    }
}

/// Routes every flow with dimension-order XY routing over the mesh described
/// by `coords`.
///
/// # Errors
///
/// * [`RouteError::Topology`] if a core is unmapped.
/// * [`RouteError::Unroutable`] if a needed mesh link is missing from the
///   topology (e.g. the topology is not actually the mesh `coords` claims).
pub fn route_all_xy(
    topology: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
    coords: &MeshCoords,
) -> Result<RouteSet, RouteError> {
    let mut routes = RouteSet::new(comm.flow_count());
    for (flow_id, flow) in comm.flows() {
        let src = map.require(flow.source)?;
        let dst = map.require(flow.destination)?;
        if src == dst {
            routes.set_route(flow_id, Route::empty());
            continue;
        }
        let (sr, sc) = coords
            .position(src)
            .ok_or(RouteError::WrongEndpoints { flow: flow_id })?;
        let (dr, dc) = coords
            .position(dst)
            .ok_or(RouteError::WrongEndpoints { flow: flow_id })?;

        let mut links: Vec<LinkId> = Vec::new();
        let (mut r, mut c) = (sr, sc);
        // X first (columns), then Y (rows).
        while c != dc {
            let next_c = if dc > c { c + 1 } else { c - 1 };
            let link = topology
                .find_link(coords.at(r, c), coords.at(r, next_c))
                .ok_or(RouteError::Unroutable {
                    flow: flow_id,
                    from: coords.at(r, c),
                    to: coords.at(r, next_c),
                })?;
            links.push(link);
            c = next_c;
        }
        while r != dr {
            let next_r = if dr > r { r + 1 } else { r - 1 };
            let link = topology
                .find_link(coords.at(r, c), coords.at(next_r, c))
                .ok_or(RouteError::Unroutable {
                    flow: flow_id,
                    from: coords.at(r, c),
                    to: coords.at(next_r, c),
                })?;
            links.push(link);
            r = next_r;
        }
        routes.set_route(flow_id, Route::from_links(links));
    }
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routes;
    use noc_topology::{generators, CommGraph, CoreMap};

    fn mesh_design(rows: usize, cols: usize) -> (Topology, CommGraph, CoreMap, MeshCoords) {
        let generated = generators::mesh2d(rows, cols, 1.0);
        let coords = MeshCoords::new(rows, cols, generated.switches.clone());
        let mut comm = CommGraph::new();
        let n = rows * cols;
        let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
        // all-to-all-ish: each core talks to the diagonally opposite one.
        for i in 0..n {
            comm.add_flow(cores[i], cores[n - 1 - i], 10.0);
        }
        let mut map = CoreMap::new(n);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        (generated.topology, comm, map, coords)
    }

    #[test]
    fn xy_routes_are_minimal_and_valid() {
        let (t, c, m, coords) = mesh_design(3, 4);
        let routes = route_all_xy(&t, &c, &m, &coords).unwrap();
        validate_routes(&t, &c, &m, &routes).unwrap();
        // Route length equals Manhattan distance.
        for (fid, flow) in c.flows() {
            let (sr, sc) = coords.position(m.require(flow.source).unwrap()).unwrap();
            let (dr, dc) = coords
                .position(m.require(flow.destination).unwrap())
                .unwrap();
            let manhattan = sr.abs_diff(dr) + sc.abs_diff(dc);
            assert_eq!(routes.route(fid).unwrap().hop_count(), manhattan);
        }
    }

    #[test]
    fn xy_goes_column_first() {
        let (t, c, m, coords) = mesh_design(3, 3);
        let routes = route_all_xy(&t, &c, &m, &coords).unwrap();
        // Flow 0: from (0,0) to (2,2). First hops must stay in row 0.
        let r = routes.route(noc_topology::FlowId::from_index(0)).unwrap();
        let path = r.switch_path(&t).unwrap();
        assert_eq!(path[1], coords.at(0, 1));
        assert_eq!(path[2], coords.at(0, 2));
        assert_eq!(path[3], coords.at(1, 2));
    }

    #[test]
    fn coordinates_round_trip() {
        let generated = generators::mesh2d(2, 3, 1.0);
        let coords = MeshCoords::new(2, 3, generated.switches.clone());
        assert_eq!(coords.rows(), 2);
        assert_eq!(coords.cols(), 3);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(coords.position(coords.at(r, c)), Some((r, c)));
            }
        }
        assert_eq!(coords.position(SwitchId::from_index(99)), None);
    }

    #[test]
    fn same_switch_flow_is_empty() {
        let generated = generators::mesh2d(2, 2, 1.0);
        let coords = MeshCoords::new(2, 2, generated.switches.clone());
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[0]).unwrap();
        let routes = route_all_xy(&generated.topology, &comm, &map, &coords).unwrap();
        assert!(routes.route(f).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "row-major")]
    fn wrong_switch_count_panics() {
        MeshCoords::new(2, 2, vec![SwitchId::from_index(0)]);
    }
}
