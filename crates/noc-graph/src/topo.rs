//! Topological ordering and acyclicity checks (Kahn's algorithm).

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Returns a topological order of the graph, or `None` if it contains a
/// directed cycle.
///
/// When several orders are valid the one preferring smaller node ids first is
/// returned, making the output deterministic.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, topo};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
/// assert_eq!(topo::topological_sort(&g), Some(vec![a, b]));
/// ```
pub fn topological_sort<N, E>(graph: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = (0..n)
        .map(|i| graph.in_degree(NodeId::from_index(i)))
        .collect();
    // Use a sorted frontier (BinaryHeap of Reverse would also work; a VecDeque
    // seeded in id order plus pushing in id order is enough for determinism
    // because successors are explored in insertion order).
    let mut queue: VecDeque<NodeId> = (0..n)
        .filter(|&i| in_deg[i] == 0)
        .map(NodeId::from_index)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for succ in graph.successors(node) {
            in_deg[succ.index()] -= 1;
            if in_deg[succ.index()] == 0 {
                queue.push_back(succ);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Returns `true` if the graph is a DAG.
pub fn is_dag<N, E>(graph: &DiGraph<N, E>) -> bool {
    topological_sort(graph).is_some()
}

/// Longest path length (in edges) in a DAG, or `None` if the graph is cyclic.
///
/// Used by the resource-ordering baseline: the number of channel classes a
/// network needs is the length of the longest route, which is bounded by the
/// longest path of the (acyclic) route-order relation.
pub fn longest_path_len<N, E>(graph: &DiGraph<N, E>) -> Option<usize> {
    let order = topological_sort(graph)?;
    let mut best = vec![0usize; graph.node_count()];
    let mut overall = 0;
    for node in order {
        let here = best[node.index()];
        for succ in graph.successors(node) {
            if here + 1 > best[succ.index()] {
                best[succ.index()] = here + 1;
                overall = overall.max(here + 1);
            }
        }
    }
    Some(overall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_diamond() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let order = topological_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
        assert!(is_dag(&g));
    }

    #[test]
    fn cycle_has_no_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert_eq!(topological_sort(&g), None);
        assert!(!is_dag(&g));
        assert_eq!(longest_path_len(&g), None);
    }

    #[test]
    fn empty_graph_is_a_dag() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(topological_sort(&g), Some(vec![]));
        assert!(is_dag(&g));
        assert_eq!(longest_path_len(&g), Some(0));
    }

    #[test]
    fn longest_path_of_a_chain() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        assert_eq!(longest_path_len(&g), Some(5));
    }

    #[test]
    fn removing_the_back_edge_makes_it_sortable() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let back = g.add_edge(b, a, ());
        assert!(!is_dag(&g));
        g.remove_edge(back);
        assert!(is_dag(&g));
    }
}
