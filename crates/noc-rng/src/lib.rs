//! Minimal deterministic PRNG for the deadlock-removal suite.
//!
//! The container this suite builds in has no access to crates.io, so the
//! benchmark generators and the traffic generator cannot depend on the
//! `rand` crate.  This crate provides the tiny slice of `rand`'s API the
//! suite actually uses — a seedable small RNG with ranged sampling — backed
//! by `splitmix64` seeding and a `xoshiro256++` core, both public-domain
//! algorithms (Blackman & Vigna).
//!
//! Determinism is part of the contract: the same seed always yields the same
//! sequence on every platform, which keeps every benchmark communication
//! graph and every simulated workload reproducible run-to-run.
//!
//! # Example
//!
//! ```
//! use noc_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let bw: f64 = rng.gen_range(100.0..800.0);
//! assert!((100.0..800.0).contains(&bw));
//! let gap: u64 = rng.gen_range(0..=10);
//! assert!(gap <= 10);
//! assert_eq!(
//!     SmallRng::seed_from_u64(7).next_u64(),
//!     SmallRng::seed_from_u64(7).next_u64(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (xoshiro256++ core, splitmix64 seeding).
///
/// Not cryptographically secure — statistical quality only, which is all the
/// suite needs for synthetic bandwidth values and traffic jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates an RNG whose full state is derived from `seed` via
    /// splitmix64, so nearby seeds still produce uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from `range`.  Mirrors `rand::Rng::gen_range` for
    /// the range shapes the suite uses (`Range<f64>`, `Range<usize>`,
    /// `RangeInclusive<u64>`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

/// A range type [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Floating-point rounding can land exactly on the exclusive upper
        // bound when the span is large relative to its ulp; keep the
        // half-open contract by stepping just below it.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut SmallRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        // Debiased modulo rejection sampling.
        let span = span + 1;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        (self.start as u64 + (0..=span - 1).sample(rng)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(5.0..50.0);
            assert!((5.0..50.0).contains(&v));
        }
    }

    #[test]
    fn f64_range_never_returns_the_exclusive_bound() {
        // With start = 2^53 and a 4-wide span, the result granularity is one
        // ulp = 2, so naive scaling rounds onto `end` roughly a quarter of
        // the time; the half-open contract must hold anyway.
        let (start, end) = (9007199254740992.0, 9007199254740996.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(start..end);
            assert!((start..end).contains(&v), "{v} escaped [{start}, {end})");
        }
    }

    #[test]
    fn u64_inclusive_range_covers_endpoints() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..=3);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn usize_range_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 600), "{counts:?}");
    }

    #[test]
    fn degenerate_inclusive_range_returns_the_value() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(rng.gen_range(7u64..=7), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3.0..3.0);
    }
}
