//! Weighted shortest paths (Dijkstra) over a [`DiGraph`].
//!
//! Topology synthesis and the default (deadlock-oblivious) routing both use
//! minimum-cost paths over the switch graph, where the cost of a link can be
//! hop count, inverse bandwidth or an arbitrary user-provided weight.

use crate::csr::GraphView;
use crate::digraph::{DiGraph, EdgeId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Option<u64>>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// The source node the search started from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<u64> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// Reconstructs the node path from the source to `target` (inclusive), or
    /// `None` if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target;
        while let Some((prev, _)) = self.parent[cur.index()] {
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    /// Reconstructs the edge path from the source to `target`, or `None` if
    /// `target` is unreachable.  The source itself yields an empty path.
    pub fn edge_path_to(&self, target: NodeId) -> Option<Vec<EdgeId>> {
        self.distance(target)?;
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((prev, edge)) = self.parent[cur.index()] {
            edges.push(edge);
            cur = prev;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Runs Dijkstra from `source` using `edge_cost` to weigh each edge.
///
/// Costs must be non-negative (guaranteed by the `u64` type).  Edges mapped
/// to `None` are treated as unusable and skipped, which lets callers express
/// capacity or policy restrictions without mutating the graph.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, shortest_path};
///
/// let mut g: DiGraph<(), u64> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 1);
/// g.add_edge(b, c, 1);
/// g.add_edge(a, c, 5);
/// let sp = shortest_path::dijkstra(&g, a, |e| Some(*e.weight));
/// assert_eq!(sp.distance(c), Some(2));
/// assert_eq!(sp.path_to(c).unwrap(), vec![a, b, c]);
/// ```
pub fn dijkstra<N, E>(
    graph: &DiGraph<N, E>,
    source: NodeId,
    mut edge_cost: impl FnMut(crate::digraph::EdgeRef<'_, E>) -> Option<u64>,
) -> ShortestPaths {
    dijkstra_arcs(graph, source, |id, from, to| {
        let weight = graph
            .edge_weight(id)
            .expect("arcs reported by the graph view are live");
        edge_cost(crate::digraph::EdgeRef {
            id,
            source: from,
            target: to,
            weight,
        })
    })
}

/// Dijkstra over any [`GraphView`] representation, weighing each arc by
/// `arc_cost(edge id, source, target)`.
///
/// This is the representation-agnostic core behind [`dijkstra`]: on a frozen
/// [`CsrGraph`](crate::CsrGraph) the per-node arc scan is one contiguous
/// slice, which is what the all-source route computations at 10k+ switches
/// run on.  Arcs mapped to `None` are skipped, exactly as in [`dijkstra`].
pub fn dijkstra_arcs<G: GraphView>(
    graph: &G,
    source: NodeId,
    mut arc_cost: impl FnMut(EdgeId, NodeId, NodeId) -> Option<u64>,
) -> ShortestPaths {
    let n = graph.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    if graph.contains_node(source) {
        dist[source.index()] = Some(0);
        heap.push(Reverse((0, source.index())));
    }
    while let Some(Reverse((d, idx))) = heap.pop() {
        if dist[idx] != Some(d) {
            continue; // stale entry
        }
        let node = NodeId::from_index(idx);
        for (edge, next) in graph.out_arcs(node) {
            let Some(cost) = arc_cost(edge, node, next) else {
                continue;
            };
            let nd = d.saturating_add(cost);
            if dist[next.index()].is_none_or(|old| nd < old) {
                dist[next.index()] = Some(nd);
                parent[next.index()] = Some((node, edge));
                heap.push(Reverse((nd, next.index())));
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Convenience wrapper: Dijkstra where every edge costs 1 (hop count).
pub fn hop_distances<G: GraphView>(graph: &G, source: NodeId) -> ShortestPaths {
    dijkstra_arcs(graph, source, |_, _, _| Some(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_distances() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 2);
        g.add_edge(n[1], n[2], 3);
        g.add_edge(n[2], n[3], 4);
        let sp = dijkstra(&g, n[0], |e| Some(*e.weight));
        assert_eq!(sp.distance(n[0]), Some(0));
        assert_eq!(sp.distance(n[3]), Some(9));
        assert_eq!(sp.path_to(n[3]).unwrap().len(), 4);
        assert_eq!(sp.edge_path_to(n[3]).unwrap().len(), 3);
        assert_eq!(sp.edge_path_to(n[0]).unwrap().len(), 0);
        assert_eq!(sp.source(), n[0]);
    }

    #[test]
    fn picks_cheaper_of_two_routes() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, 10);
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        let sp = dijkstra(&g, a, |e| Some(*e.weight));
        assert_eq!(sp.distance(c), Some(2));
        assert_eq!(sp.path_to(c).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let sp = dijkstra(&g, a, |e| Some(*e.weight));
        assert_eq!(sp.distance(b), None);
        assert_eq!(sp.path_to(b), None);
        assert_eq!(sp.edge_path_to(b), None);
    }

    #[test]
    fn edges_mapped_to_none_are_skipped() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        let sp = dijkstra(
            &g,
            a,
            |e| {
                if e.source == b {
                    None
                } else {
                    Some(*e.weight)
                }
            },
        );
        assert_eq!(sp.distance(b), Some(1));
        assert_eq!(sp.distance(c), None);
    }

    #[test]
    fn hop_distances_ignore_weights() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1000);
        let sp = hop_distances(&g, a);
        assert_eq!(sp.distance(b), Some(1));
    }

    #[test]
    fn parallel_edges_use_the_cheapest() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 7);
        let cheap = g.add_edge(a, b, 3);
        let sp = dijkstra(&g, a, |e| Some(*e.weight));
        assert_eq!(sp.distance(b), Some(3));
        assert_eq!(sp.edge_path_to(b).unwrap(), vec![cheap]);
    }
}
