//! Escape-channel deadlock *avoidance*.
//!
//! Instead of repairing a cyclic CDG after the fact (Algorithm 1) or
//! ordering channels along every route (resource ordering), avoidance
//! schemes reserve part of the VC space as an *escape layer* restricted to a
//! deadlock-free subgraph, so the design can never deadlock in the first
//! place and zero cycles ever need breaking (cf. Duato's theory and the
//! OQ/VOQ escape designs of arXiv:2303.10526).
//!
//! The deadlock-free subgraph used here is the up*/down* order of
//! [`noc_routing::updown`]: a BFS spanning tree labels every link *up*
//! (towards the root) or *down*, and a design whose routes never turn
//! down→up has an acyclic CDG.  Static routes produced by deadlock-oblivious
//! shortest-path routing *do* contain down→up turns, so
//! [`apply_escape_channels`] keeps every route on its physical links and
//! lifts it one VC **layer** at every illegal turn:
//!
//! * hops start on layer 0 (the base VCs);
//! * whenever a route would traverse an *up* link right after a *down* link
//!   — the turn the up*/down* order forbids — the remainder of the route
//!   moves to the next layer (an escape VC on each subsequent link);
//! * a link provides as many VCs as the highest layer crossing it, so links
//!   never used after an illegal turn keep their single base VC.
//!
//! Every layer on its own is an up*/down*-legal sub-design (its CDG is
//! acyclic by the classic spanning-tree argument), and route segments only
//! ever move to *higher* layers, so layer indices are non-decreasing along
//! every dependency chain: any CDG cycle would have to live inside a single
//! layer, which is impossible.  The whole CDG is therefore acyclic by
//! construction — the avoidance guarantee — and the cost of the scheme is
//! exactly the escape VCs it reserves, reported as
//! [`EscapeChannelResult::added_vcs`] and compared against the other
//! strategies in the `fig_strategy_matrix` sweep.

use noc_routing::updown::{LinkDirection, UpDownLabels};
use noc_routing::RouteSet;
use noc_topology::{Channel, SwitchId, Topology, TopologyError};
use std::error::Error;
use std::fmt;

/// Result of applying escape-channel avoidance to a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeChannelResult {
    /// Number of VCs added on top of the single VC every link starts with
    /// (the escape layers actually materialised).
    pub added_vcs: usize,
    /// Number of VC layers used, base layer included (1 when every route is
    /// already up*/down*-legal and no escape VC was needed).
    pub layers: usize,
    /// Flows that needed at least one escape-layer hop.
    pub escaped_flows: usize,
    /// Total hops assigned to escape layers (layer ≥ 1) across all routes.
    pub escape_hops: usize,
    /// Root of the BFS spanning tree the up*/down* order was built from.
    pub root: SwitchId,
}

/// Errors reported by [`apply_escape_channels`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscapeError {
    /// A route crosses a link whose endpoints are not reachable from the
    /// spanning-tree root, so the link has no up/down direction.
    UnreachableLink {
        /// The unlabelled link.
        link: noc_topology::LinkId,
        /// The root the labelling was built from.
        root: SwitchId,
    },
    /// An underlying topology-model error (unknown link).
    Topology(TopologyError),
}

impl fmt::Display for EscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeError::UnreachableLink { link, root } => write!(
                f,
                "link {link} is not reachable from the spanning-tree root {root}, \
                 so it has no up/down direction"
            ),
            EscapeError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl Error for EscapeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EscapeError::Topology(e) => Some(e),
            EscapeError::UnreachableLink { .. } => None,
        }
    }
}

impl From<TopologyError> for EscapeError {
    fn from(e: TopologyError) -> Self {
        EscapeError::Topology(e)
    }
}

/// Applies escape-channel avoidance in place: every route keeps its physical
/// links, hops are assigned to VC layers (ascending at every down→up turn of
/// the up*/down* order rooted at `root`), and every link grows enough VCs to
/// cover the highest layer that crosses it.
///
/// The resulting CDG is acyclic by construction — see the module docs — so
/// a design treated this way can never deadlock and no cycle breaking is
/// required.
///
/// # Errors
///
/// * [`EscapeError::Topology`] if a route references a link unknown to the
///   topology.
/// * [`EscapeError::UnreachableLink`] if a route crosses a link that the
///   BFS labelling could not reach from `root` (a disconnected topology);
///   the bundled synthesized designs are always connected.
pub fn apply_escape_channels(
    topology: &mut Topology,
    routes: &mut RouteSet,
    root: SwitchId,
) -> Result<EscapeChannelResult, EscapeError> {
    let labels = UpDownLabels::new(topology, root);

    // Highest layer needed on every link (every link keeps its base VC).
    let mut needed_vcs: Vec<usize> = vec![1; topology.link_count()];
    let mut layers = 1usize;
    let mut escaped_flows = 0usize;
    let mut escape_hops = 0usize;

    for flow_index in 0..routes.flow_count() {
        let flow = noc_topology::FlowId::from_index(flow_index);
        let route = routes.route_mut(flow).expect("index is in range");
        let mut layer = 0usize;
        let mut prev: Option<LinkDirection> = None;
        let mut used_escape = false;
        for channel in route.channels_mut().iter_mut() {
            let Some(direction) = labels.direction(topology, channel.link) else {
                return Err(if topology.link(channel.link).is_none() {
                    EscapeError::Topology(TopologyError::UnknownLink(channel.link))
                } else {
                    EscapeError::UnreachableLink {
                        link: channel.link,
                        root,
                    }
                });
            };
            if prev == Some(LinkDirection::Down) && direction == LinkDirection::Up {
                layer += 1;
            }
            *channel = Channel::new(channel.link, layer);
            if layer > 0 {
                used_escape = true;
                escape_hops += 1;
            }
            let slot = &mut needed_vcs[channel.link.index()];
            *slot = (*slot).max(layer + 1);
            prev = Some(direction);
        }
        if used_escape {
            escaped_flows += 1;
        }
        layers = layers.max(layer + 1);
    }

    let mut added = 0usize;
    for (index, &needed) in needed_vcs.iter().enumerate() {
        let link = noc_topology::LinkId::from_index(index);
        let current = topology
            .link(link)
            .ok_or(TopologyError::UnknownLink(link))?
            .vcs;
        for _ in current..needed {
            topology.add_vc(link)?;
            added += 1;
        }
    }

    Ok(EscapeChannelResult {
        added_vcs: added,
        layers,
        escaped_flows,
        escape_hops,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use noc_routing::Route;
    use noc_topology::{FlowId, LinkId};

    /// The paper's Figure 1 ring with its four flows (cyclic CDG).
    fn figure_1_design() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (1..=4).map(|i| topo.add_switch(format!("SW{i}"))).collect();
        let links: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let mut routes = RouteSet::new(4);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([links[0], links[1], links[2]]),
        );
        routes.set_route(
            FlowId::from_index(1),
            Route::from_links([links[2], links[3]]),
        );
        routes.set_route(
            FlowId::from_index(2),
            Route::from_links([links[3], links[0]]),
        );
        routes.set_route(
            FlowId::from_index(3),
            Route::from_links([links[0], links[1]]),
        );
        (topo, routes)
    }

    #[test]
    fn escape_layers_make_the_ring_deadlock_free() {
        let (mut topo, mut routes) = figure_1_design();
        assert!(verify::check_deadlock_free(&topo, &routes).is_err());
        let result =
            apply_escape_channels(&mut topo, &mut routes, SwitchId::from_index(0)).unwrap();
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        assert!(result.added_vcs >= 1, "the ring needs an escape layer");
        assert!(result.layers >= 2);
        assert!(result.escaped_flows >= 1);
        assert_eq!(topo.extra_vc_count(), result.added_vcs);
    }

    #[test]
    fn routes_keep_their_physical_links() {
        let (mut topo, mut routes) = figure_1_design();
        let before: Vec<Vec<LinkId>> = routes.iter().map(|(_, r)| r.links().collect()).collect();
        apply_escape_channels(&mut topo, &mut routes, SwitchId::from_index(0)).unwrap();
        let after: Vec<Vec<LinkId>> = routes.iter().map(|(_, r)| r.links().collect()).collect();
        assert_eq!(before, after, "avoidance must only change VC assignments");
    }

    #[test]
    fn legal_updown_routes_need_zero_escape_vcs() {
        // Routes produced by up*/down* routing itself have no illegal turn,
        // so the escape scheme adds nothing and every hop stays on layer 0.
        use noc_routing::updown::route_all_updown;
        use noc_topology::{generators, CommGraph, CoreMap};
        let gen = generators::mesh2d(3, 3, 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..9).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    comm.add_flow(cores[i], cores[j], 1.0);
                }
            }
        }
        let mut map = CoreMap::new(9);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, gen.switches[i]).unwrap();
        }
        let root = gen.switches[0];
        let mut topo = gen.topology;
        let mut routes = route_all_updown(&topo, &comm, &map, root).unwrap();
        let result = apply_escape_channels(&mut topo, &mut routes, root).unwrap();
        assert_eq!(result.added_vcs, 0);
        assert_eq!(result.layers, 1);
        assert_eq!(result.escaped_flows, 0);
        assert_eq!(result.escape_hops, 0);
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
    }

    #[test]
    fn multiple_illegal_turns_stack_layers() {
        // One flow zig-zagging down→up→down→up across parallel links needs
        // two escape layers on the links it crosses after each turn.
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        // Parallel links both ways: s0→s1 is Down (s1 deeper), s1→s0 is Up.
        let down: Vec<LinkId> = (0..3).map(|_| topo.add_link(s0, s1, 1.0)).collect();
        let up: Vec<LinkId> = (0..2).map(|_| topo.add_link(s1, s0, 1.0)).collect();
        let mut routes = RouteSet::new(1);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([down[0], up[0], down[1], up[1], down[2]]),
        );
        let result = apply_escape_channels(&mut topo, &mut routes, s0).unwrap();
        assert_eq!(result.layers, 3, "two down→up turns → two escape layers");
        assert_eq!(result.escaped_flows, 1);
        let channels = routes.route(FlowId::from_index(0)).unwrap().channels();
        let vcs: Vec<usize> = channels.iter().map(|c| c.vc).collect();
        assert_eq!(vcs, vec![0, 1, 1, 2, 2]);
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
    }

    #[test]
    fn unknown_link_is_reported() {
        let mut topo = Topology::new();
        topo.add_switch("only");
        let mut routes = RouteSet::new(1);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([LinkId::from_index(5)]),
        );
        let err =
            apply_escape_channels(&mut topo, &mut routes, SwitchId::from_index(0)).unwrap_err();
        assert!(matches!(err, EscapeError::Topology(_)));
        assert!(err.to_string().contains("topology error"));
    }

    #[test]
    fn unreachable_link_is_reported() {
        // Two disconnected islands: the island link has no up/down label
        // relative to a root on the other island.
        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        let a = topo.add_switch("a");
        let b = topo.add_switch("b");
        let island = topo.add_link(a, b, 1.0);
        let _ = root;
        let mut routes = RouteSet::new(1);
        routes.set_route(FlowId::from_index(0), Route::from_links([island]));
        let err =
            apply_escape_channels(&mut topo, &mut routes, SwitchId::from_index(0)).unwrap_err();
        assert!(matches!(err, EscapeError::UnreachableLink { .. }));
        assert!(err.to_string().contains("not reachable"));
    }
}
