//! Unified staged pipeline API for the deadlock-removal suite.
//!
//! The DATE 2010 paper's whole evaluation is one pipeline — benchmark →
//! topology synthesis → routing → deadlock removal → power/simulation — and
//! before this crate every test, example and experiment binary re-implemented
//! it longhand with its own clone/verify boilerplate.  `noc-flow` makes the
//! pipeline a first-class object:
//!
//! * [`DesignFlow`] is a staged builder whose stages
//!   ([`SynthesizedStage`], [`RoutedStage`], [`DeadlockFreeStage`],
//!   [`SimulatedStage`]) each own their topology/routes and auto-run the
//!   matching `validate_*`/`verify` check on entry,
//! * [`Router`] is the pluggable routing seam
//!   ([`ShortestPathRouter`], [`XyRouter`], [`UpDownRouter`]),
//! * [`DeadlockStrategy`] is the pluggable deadlock-handling seam, with one
//!   implementation per point of the deadlock design space:
//!   [`CycleBreaking`] (the paper's Algorithm 1 — removal),
//!   [`ResourceOrdering`] (its baseline — prevention), [`EscapeChannel`]
//!   (up*/down* escape-VC layers — avoidance) and [`RecoveryReconfig`]
//!   (DBR-style drain-and-reconfigure — recovery); swapping schemes is a
//!   one-line change,
//! * [`FlowSweep`] drives (benchmark × switch-count × strategy) grids, the
//!   shape of the paper's Figures 8–10 — serially via
//!   [`run`](FlowSweep::run) or sharded across scoped worker threads via
//!   [`run_parallel`](FlowSweep::run_parallel) /
//!   [`run_streaming`](FlowSweep::run_streaming), which shard down to
//!   individual (grid point × strategy) tasks, stream completed points to
//!   an observer and still return them in deterministic grid order,
//! * [`json`] is a dependency-free JSON writer/parser ([`ToJson`],
//!   [`JsonValue`]) so sweep results can be exported and plotted outside
//!   Rust.
//!
//! # Quick start
//!
//! ```
//! use noc_flow::{CycleBreaking, DesignFlow, ResourceOrdering, ShortestPathRouter};
//! use noc_synth::SynthesisConfig;
//! use noc_topology::benchmarks::Benchmark;
//!
//! let routed = DesignFlow::from_benchmark(Benchmark::D36x8)
//!     .synthesize(SynthesisConfig::with_switches(10))?
//!     .route(&ShortestPathRouter::default())?;
//!
//! // The same routed design under both schemes — no hand-cloning.
//! let removal = routed.resolve_deadlocks(&CycleBreaking::default())?;
//! let ordering = routed.resolve_deadlocks(&ResourceOrdering)?;
//! assert!(removal.resolution().added_vcs <= ordering.resolution().added_vcs);
//! # Ok::<(), noc_flow::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod json;
pub mod router;
pub mod stage;
pub mod strategy;
pub mod sweep;
pub mod trace;

pub use error::FlowError;
pub use executor::SweepProgress;
pub use json::{
    Artifact, ArtifactError, JsonParseError, JsonValue, ParsedArtifact, RawJson, ToJson,
    SCHEMA_VERSION,
};
pub use noc_deadlock::report::StrategyKind;
pub use router::{Router, ShortestPathRouter, UpDownRouter, XyRouter};
pub use stage::{
    DeadlockFreeStage, DesignFlow, RoutedStage, SimulatedStage, SynthesizedStage, VcRunDetails,
};
pub use strategy::{
    CycleBreaking, DeadlockResolution, DeadlockStrategy, EscapeChannel, RecoveryReconfig,
    ResourceOrdering,
};
pub use sweep::{
    CertifyOutcome, FaultRunStats, FaultSweepSim, FlowSweep, PreparedPoint, StrategyOutcome,
    StrategySimStats, SweepPoint, VcSweepSim,
};
pub use trace::{PhaseRow, TraceArtifact, TraceSummary, TRACE_FIGURE};
