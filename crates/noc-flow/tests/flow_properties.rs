//! Property tests for the pipeline's extension traits:
//!
//! 1. every [`Router`] implementation produces routes that pass
//!    `validate_routes` (checked here explicitly, on top of the stage's own
//!    auto-validation),
//! 2. both [`DeadlockStrategy`] implementations leave the CDG acyclic on a
//!    ring, a mesh, and every benchmark of the paper's suite.

use noc_deadlock::verify::check_deadlock_free;
use noc_flow::{
    CycleBreaking, DeadlockStrategy, DesignFlow, ResourceOrdering, Router, ShortestPathRouter,
    UpDownRouter, XyRouter,
};
use noc_routing::shortest::LinkCost;
use noc_routing::validate::validate_routes;
use noc_routing::xy::MeshCoords;
use noc_synth::SynthesisConfig;
use noc_topology::benchmarks::Benchmark;
use noc_topology::{generators, CommGraph, CoreMap, SwitchId, Topology};

/// An all-to-all traffic pattern over a generated regular topology, one
/// core per switch.
fn all_to_all_flow(generated: generators::Generated) -> (DesignFlow, Topology, CoreMap) {
    let n = generated.switches.len();
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                comm.add_flow(cores[i], cores[j], 10.0);
            }
        }
    }
    let mut map = CoreMap::new(n);
    for (i, &c) in cores.iter().enumerate() {
        map.assign(c, generated.switches[i]).unwrap();
    }
    (DesignFlow::from_comm(comm), generated.topology, map)
}

/// Every router implementation, over every topology it supports, yields
/// routes that pass `validate_routes`.
#[test]
fn every_router_impl_produces_valid_routes() {
    // Shortest-path (both cost models) and up*/down* handle arbitrary
    // topologies: rings, meshes, and synthesized benchmark designs.
    for size in [3, 5, 8] {
        for gen in [
            generators::bidirectional_ring(size, 1000.0),
            generators::mesh2d(size, 2, 1000.0),
        ] {
            let (flow, topology, map) = all_to_all_flow(gen);
            let stage = flow.with_design(topology, map).unwrap();
            let routers: Vec<Box<dyn Router>> = vec![
                Box::new(ShortestPathRouter::default()),
                Box::new(ShortestPathRouter::with_cost(LinkCost::InverseBandwidth)),
                Box::new(UpDownRouter::default()),
                Box::new(UpDownRouter::rooted_at(SwitchId::from_index(size - 1))),
            ];
            for router in routers {
                let routed = stage.route(router.as_ref()).unwrap();
                validate_routes(
                    routed.topology(),
                    routed.comm(),
                    routed.core_map(),
                    routed.routes(),
                )
                .unwrap_or_else(|e| panic!("{} on size {size}: {e}", router.name()));
            }
        }
    }

    // XY is mesh-specific.
    for (rows, cols) in [(2, 2), (2, 4), (3, 3)] {
        let gen = generators::mesh2d(rows, cols, 1000.0);
        let coords = MeshCoords::new(rows, cols, gen.switches.clone());
        let (flow, topology, map) = all_to_all_flow(gen);
        let routed = flow
            .with_design(topology, map)
            .unwrap()
            .route(&XyRouter::new(coords))
            .unwrap();
        validate_routes(
            routed.topology(),
            routed.comm(),
            routed.core_map(),
            routed.routes(),
        )
        .unwrap_or_else(|e| panic!("xy on {rows}x{cols}: {e}"));
        // XY on a mesh is deadlock-free by construction.
        assert!(routed.is_deadlock_free());
    }
}

/// Both deadlock strategies leave the CDG acyclic on a ring (the paper's
/// cyclic Figure 1 shape) and on a mesh (already acyclic under XY).
#[test]
fn both_strategies_fix_ring_and_mesh() {
    let strategies: [&dyn DeadlockStrategy; 2] = [&CycleBreaking::default(), &ResourceOrdering];

    // Unidirectional ring: the canonical cyclic CDG.
    let (flow, topology, map) = all_to_all_flow(generators::unidirectional_ring(5, 1000.0));
    let routed = flow
        .with_design(topology, map)
        .unwrap()
        .route(&ShortestPathRouter::default())
        .unwrap();
    assert!(!routed.is_deadlock_free(), "a routed ring must be cyclic");
    for strategy in strategies {
        let fixed = routed.resolve_deadlocks(strategy).unwrap();
        check_deadlock_free(fixed.topology(), fixed.routes())
            .unwrap_or_else(|c| panic!("{} left a cycle on the ring: {c}", strategy.name()));
    }

    // Mesh under XY: already safe, and cycle breaking must add zero VCs.
    let gen = generators::mesh2d(3, 3, 1000.0);
    let coords = MeshCoords::new(3, 3, gen.switches.clone());
    let (flow, topology, map) = all_to_all_flow(gen);
    let routed = flow
        .with_design(topology, map)
        .unwrap()
        .route(&XyRouter::new(coords))
        .unwrap();
    for strategy in strategies {
        let fixed = routed.resolve_deadlocks(strategy).unwrap();
        check_deadlock_free(fixed.topology(), fixed.routes()).unwrap();
    }
    let removal = routed.resolve_deadlocks(&CycleBreaking::default()).unwrap();
    assert_eq!(removal.resolution().added_vcs, 0);
    assert!(
        removal
            .resolution()
            .removal
            .as_ref()
            .unwrap()
            .already_deadlock_free
    );
}

/// Both strategies leave the CDG acyclic on every benchmark of the paper's
/// suite (synthesized designs, the paper's input routing).
#[test]
fn both_strategies_fix_every_benchmark() {
    let strategies: [&dyn DeadlockStrategy; 2] = [&CycleBreaking::default(), &ResourceOrdering];
    for benchmark in Benchmark::ALL {
        let routed = DesignFlow::from_benchmark(benchmark)
            .synthesize(SynthesisConfig::with_switches(9))
            .unwrap()
            .route_default()
            .unwrap();
        for strategy in strategies {
            let fixed = routed
                .resolve_deadlocks(strategy)
                .unwrap_or_else(|e| panic!("{} on {benchmark}: {e}", strategy.name()));
            check_deadlock_free(fixed.topology(), fixed.routes())
                .unwrap_or_else(|c| panic!("{} on {benchmark}: {c}", strategy.name()));
            // The repaired routes still validate against the design.
            validate_routes(
                fixed.topology(),
                fixed.comm(),
                fixed.core_map(),
                fixed.routes(),
            )
            .unwrap();
        }
    }
}

/// `route_default` reports the routing scheme the synthesizer actually
/// used, including the non-default cost model.
#[test]
fn route_default_reports_the_synthesis_cost_model() {
    let hops = DesignFlow::from_benchmark(Benchmark::D26Media)
        .synthesize(SynthesisConfig::with_switches(8))
        .unwrap()
        .route_default()
        .unwrap();
    assert_eq!(hops.router_name(), "shortest-path");

    let bw = DesignFlow::from_benchmark(Benchmark::D26Media)
        .synthesize(SynthesisConfig {
            link_cost: LinkCost::InverseBandwidth,
            ..SynthesisConfig::with_switches(8)
        })
        .unwrap()
        .route_default()
        .unwrap();
    assert_eq!(bw.router_name(), "shortest-path-bw");
}

/// A broken strategy (one that does nothing) is rejected by the stage's
/// post-verification instead of leaking a cyclic design downstream.
#[test]
fn stage_rejects_strategies_that_leave_cycles() {
    struct DoNothing;
    impl DeadlockStrategy for DoNothing {
        fn name(&self) -> &str {
            "do-nothing"
        }
        fn resolve(
            &self,
            _topology: &mut Topology,
            _routes: &mut noc_routing::RouteSet,
        ) -> Result<noc_flow::DeadlockResolution, noc_flow::FlowError> {
            Ok(noc_flow::DeadlockResolution::new(
                "do-nothing",
                noc_flow::StrategyKind::CycleBreaking,
            ))
        }
    }

    let (flow, topology, map) = all_to_all_flow(generators::unidirectional_ring(4, 1000.0));
    let routed = flow
        .with_design(topology, map)
        .unwrap()
        .route(&ShortestPathRouter::default())
        .unwrap();
    let err = routed.resolve_deadlocks(&DoNothing).unwrap_err();
    assert!(matches!(err, noc_flow::FlowError::StillCyclic(_)));
}

/// The VC-aware stage path: `simulate_vc` exposes the run through the
/// common `SimOutcome` view plus `vc_details`, honouring the strategy's
/// VC assignment; `simulate_vc_recovering` arms the DBR-style drain on a
/// deadlock-prone routed design and still delivers everything.
#[test]
fn vc_aware_simulation_paths_work_end_to_end() {
    use noc_sim::{AssignedVc, SingleVc, TrafficConfig, VcSimConfig};

    let routed = DesignFlow::from_benchmark(Benchmark::D36x8)
        .synthesize(SynthesisConfig::with_switches(12))
        .unwrap()
        .route_default()
        .unwrap();
    assert!(!routed.is_deadlock_free(), "the input design is cyclic");
    assert!(routed.vc_map().is_single_vc(), "input routing rides VC 0");

    let sim = VcSimConfig {
        buffer_depth: 1,
        ..VcSimConfig::default()
    };
    let traffic = TrafficConfig {
        packets_per_flow: 2,
        packet_length: 4,
        ..TrafficConfig::default()
    };

    // Diagnostic run on the routed stage (deadlock-prone design as-is).
    let diagnostic = routed.simulate_vc(&SingleVc, &sim, &traffic);
    assert_eq!(diagnostic.policy, "unsafe-single-vc");

    // The repaired design through the staged path.
    let fixed = routed.resolve_deadlocks(&CycleBreaking::default()).unwrap();
    assert!(!fixed.vc_map().is_single_vc(), "removal assigned extra VCs");
    let simulated = fixed.simulate_vc(&AssignedVc, &sim, &traffic).unwrap();
    assert!(!simulated.outcome().deadlocked);
    assert_eq!(
        simulated.outcome().stats.delivered_packets,
        simulated.outcome().stats.injected_packets
    );
    let details = simulated.vc_details().expect("vc path records details");
    assert_eq!(details.policy, "assigned-vc");
    assert!(details.detection.is_none());
    assert_eq!(details.drain.events, 0);

    // The legacy engine path carries no VC details.
    let legacy = fixed.simulate(&traffic).unwrap();
    assert!(legacy.vc_details().is_none());

    // The drain-armed run on the unrepaired design delivers everything.
    let recovered = routed
        .simulate_vc_recovering(&AssignedVc, &sim, &traffic, SwitchId::from_index(0))
        .unwrap();
    assert!(!recovered.deadlocked);
    assert_eq!(
        recovered.stats.delivered_packets,
        recovered.stats.injected_packets
    );
}
