//! Static routing for NoC topologies.
//!
//! Definition 3 of the paper describes a route as the ordered set of
//! channels (physical link + VC) a flow traverses from its source switch to
//! its destination switch.  This crate provides:
//!
//! * the [`Route`] / [`RouteSet`] data model shared with the deadlock-removal
//!   algorithm (which re-routes flows onto newly added VCs),
//! * deadlock-oblivious minimum-cost routing ([`shortest`]), the default way
//!   the paper's input routes are produced,
//! * dimension-order XY routing for meshes ([`xy`]),
//! * up*/down* routing for arbitrary topologies ([`updown`]), a classic
//!   deadlock-free baseline,
//! * per-switch routing tables for the simulator ([`table`]),
//! * route validation ([`validate`]).
//!
//! # Example
//!
//! ```
//! use noc_topology::{generators, CommGraph, CoreMap};
//! use noc_routing::shortest::route_all_shortest;
//!
//! let gen = generators::bidirectional_ring(4, 1.0);
//! let mut comm = CommGraph::new();
//! let a = comm.add_core("a");
//! let b = comm.add_core("b");
//! let f = comm.add_flow(a, b, 10.0);
//! let mut map = CoreMap::new(2);
//! map.assign(a, gen.switches[0]).unwrap();
//! map.assign(b, gen.switches[2]).unwrap();
//!
//! let routes = route_all_shortest(&gen.topology, &comm, &map).unwrap();
//! assert_eq!(routes.route(f).unwrap().hop_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod route;
pub mod shortest;
pub mod table;
pub mod updown;
pub mod validate;
pub mod xy;

pub use route::{Route, RouteSet};
pub use validate::RouteError;
