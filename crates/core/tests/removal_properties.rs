//! Integration and property-style tests for the deadlock-removal algorithm
//! over whole synthesized designs (benchmark suite + random designs).
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so the random-design properties are checked over a seeded
//! stream of inputs from `noc-rng` — same properties, deterministic cases.

use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::resource_ordering::resource_ordering_overhead;
use noc_deadlock::verify;
use noc_rng::SmallRng;
use noc_routing::validate::validate_routes;
use noc_routing::{Route, RouteSet};
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::benchmarks::Benchmark;
use noc_topology::{LinkId, Topology};

/// Every benchmark, at several switch counts: the removal algorithm must
/// leave a deadlock-free design with valid routes and must never cost more
/// VCs than the resource-ordering baseline.
#[test]
fn removal_beats_or_matches_resource_ordering_on_all_benchmarks() {
    for benchmark in Benchmark::ALL {
        let comm = benchmark.comm_graph();
        for switches in [5, 9, 14] {
            let design = synthesize(&comm, &SynthesisConfig::with_switches(switches)).unwrap();

            let baseline = resource_ordering_overhead(&design.topology, &design.routes);

            let mut topo = design.topology.clone();
            let mut routes = design.routes.clone();
            let report = remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default())
                .unwrap_or_else(|e| panic!("{benchmark}/{switches}: {e}"));

            verify::check_deadlock_free(&topo, &routes)
                .unwrap_or_else(|c| panic!("{benchmark}/{switches}: still cyclic: {c}"));
            validate_routes(&topo, &comm, &design.core_map, &routes)
                .unwrap_or_else(|e| panic!("{benchmark}/{switches}: invalid routes: {e}"));
            assert!(verify::missing_channels(&topo, &routes).is_empty());

            assert!(
                report.added_vcs <= baseline,
                "{benchmark}/{switches}: removal used {} VCs, resource ordering {}",
                report.added_vcs,
                baseline
            );
            assert_eq!(report.added_vcs, topo.extra_vc_count());
        }
    }
}

/// Ring-backbone topologies (more cycle-prone) are also always fixed.
#[test]
fn ring_backbone_designs_are_fixed() {
    for benchmark in [Benchmark::D36x8, Benchmark::D26Media, Benchmark::D35Bott] {
        let comm = benchmark.comm_graph();
        for switches in [6, 10, 14] {
            let design = synthesize(&comm, &SynthesisConfig::with_switches_ring(switches)).unwrap();
            let mut topo = design.topology.clone();
            let mut routes = design.routes.clone();
            let report =
                remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
            verify::check_deadlock_free(&topo, &routes).unwrap();
            let baseline = resource_ordering_overhead(&design.topology, &design.routes);
            assert!(report.added_vcs <= baseline);
        }
    }
}

/// Build a random unidirectional "ring with chords" topology and random
/// multi-hop routes along it.
fn random_design(
    switches: usize,
    chords: &[(usize, usize)],
    flows: &[(usize, usize)],
) -> (Topology, RouteSet) {
    let mut topo = Topology::new();
    let sw: Vec<_> = (0..switches)
        .map(|i| topo.add_switch(format!("s{i}")))
        .collect();
    let mut ring_links: Vec<LinkId> = Vec::new();
    for i in 0..switches {
        ring_links.push(topo.add_link(sw[i], sw[(i + 1) % switches], 1.0));
    }
    for &(a, b) in chords {
        if a != b {
            topo.add_link(sw[a % switches], sw[b % switches], 1.0);
        }
    }
    // Routes follow the ring from src forward `len` hops.
    let mut routes = RouteSet::new(flows.len());
    for (idx, &(src, len)) in flows.iter().enumerate() {
        let src = src % switches;
        let len = 1 + len % (switches - 1);
        let links: Vec<LinkId> = (0..len).map(|k| ring_links[(src + k) % switches]).collect();
        routes.set_route(
            noc_topology::FlowId::from_index(idx),
            Route::from_links(links),
        );
    }
    (topo, routes)
}

/// Draws the parameters the proptest strategies used to generate.
fn draw_design(rng: &mut SmallRng) -> (Topology, RouteSet) {
    let switches = rng.gen_range(3usize..10);
    let chords: Vec<(usize, usize)> = (0..rng.gen_range(0usize..6))
        .map(|_| (rng.gen_range(0usize..10), rng.gen_range(0usize..10)))
        .collect();
    let flows: Vec<(usize, usize)> = (0..rng.gen_range(1usize..24))
        .map(|_| (rng.gen_range(0usize..10), rng.gen_range(0usize..8)))
        .collect();
    random_design(switches, &chords, &flows)
}

/// The algorithm always terminates with an acyclic CDG on random ring
/// designs, the added-VC count matches the topology delta, and it never
/// costs more than resource ordering.
#[test]
fn random_ring_designs_are_always_fixed() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
    for case in 0..48 {
        let (topo, routes) = draw_design(&mut rng);
        let baseline = resource_ordering_overhead(&topo, &routes);

        let mut fixed_topo = topo.clone();
        let mut fixed_routes = routes.clone();
        let report = remove_deadlocks(
            &mut fixed_topo,
            &mut fixed_routes,
            &RemovalConfig::default(),
        )
        .unwrap_or_else(|e| panic!("case {case}: removal errored: {e}"));

        assert!(
            verify::check_deadlock_free(&fixed_topo, &fixed_routes).is_ok(),
            "case {case}"
        );
        assert!(
            verify::missing_channels(&fixed_topo, &fixed_routes).is_empty(),
            "case {case}"
        );
        assert_eq!(report.added_vcs, fixed_topo.extra_vc_count(), "case {case}");
        assert!(report.added_vcs <= baseline, "case {case}");

        // Physical link usage must be untouched.
        for (flow, route) in routes.iter() {
            let before: Vec<LinkId> = route.links().collect();
            let after: Vec<LinkId> = fixed_routes.route(flow).unwrap().links().collect();
            assert_eq!(before, after, "case {case}");
        }
    }
}

/// Resource ordering always yields an acyclic CDG too (it is a correct,
/// just expensive, baseline).
#[test]
fn resource_ordering_is_always_deadlock_free() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
    for case in 0..48 {
        let switches = rng.gen_range(3usize..8);
        let flows: Vec<(usize, usize)> = (0..rng.gen_range(1usize..16))
            .map(|_| (rng.gen_range(0usize..8), rng.gen_range(0usize..6)))
            .collect();
        let (mut topo, mut routes) = random_design(switches, &[], &flows);
        noc_deadlock::apply_resource_ordering(&mut topo, &mut routes).unwrap();
        assert!(
            verify::check_deadlock_free(&topo, &routes).is_ok(),
            "case {case}"
        );
        assert!(
            verify::missing_channels(&topo, &routes).is_empty(),
            "case {case}"
        );
    }
}
