//! Repository-level integration tests: exercise the whole stack
//! (benchmark → synthesis → routing → deadlock removal → power → simulation)
//! through the umbrella crate's [`noc_suite::flow`] pipeline API, the way
//! the examples and the experiment harness do.

use noc_suite::flow::{
    CycleBreaking, DeadlockFreeStage, DeadlockStrategy, DesignFlow, FlowSweep, ResourceOrdering,
    ShortestPathRouter,
};
use noc_suite::power::TechParams;
use noc_suite::sim::{SimConfig, TrafficConfig};
use noc_suite::synth::SynthesisConfig;
use noc_suite::topology::benchmarks::Benchmark;

/// The full Figure-8-style pipeline for one benchmark and one switch count.
/// Every stage transition auto-runs the `validate_*`/`verify` checks this
/// test used to call by hand.
fn pipeline(benchmark: Benchmark, switches: usize) {
    let routed = DesignFlow::from_benchmark(benchmark)
        .synthesize(SynthesisConfig::with_switches(switches))
        .unwrap()
        .route(&ShortestPathRouter::default())
        .unwrap();

    let baseline = routed.resource_ordering_overhead();

    // The paper's algorithm: deadlock-free and never worse than the baseline.
    let fixed = routed.resolve_deadlocks(&CycleBreaking::default()).unwrap();
    assert!(fixed.resolution().added_vcs <= baseline);

    // The power model sees the extra buffers of the baseline.
    let ordered = routed.resolve_deadlocks(&ResourceOrdering).unwrap();
    let params = TechParams::default();
    let removal_power = fixed.power(params.clone()).total_power_mw;
    let ordering_power = ordered.power(params).total_power_mw;
    assert!(ordering_power >= removal_power);
}

#[test]
fn d26_media_full_pipeline() {
    pipeline(Benchmark::D26Media, 12);
}

#[test]
fn d36_8_full_pipeline() {
    pipeline(Benchmark::D36x8, 14);
}

#[test]
fn d35_bott_full_pipeline() {
    pipeline(Benchmark::D35Bott, 9);
}

/// Swapping the deadlock scheme really is a one-line change: the same flow,
/// parameterised only by the strategy, works for both implementations.
#[test]
fn strategies_are_one_line_swaps() {
    fn fix(strategy: &dyn DeadlockStrategy) -> DeadlockFreeStage {
        DesignFlow::from_benchmark(Benchmark::D36x8)
            .synthesize(SynthesisConfig::with_switches(10))
            .unwrap()
            .route(&ShortestPathRouter::default())
            .unwrap()
            .resolve_deadlocks(strategy) // <- the one line that changes
            .unwrap()
    }

    let removal = fix(&CycleBreaking::default());
    let ordering = fix(&ResourceOrdering);
    assert_eq!(removal.resolution().strategy, "cycle-breaking");
    assert_eq!(ordering.resolution().strategy, "resource-ordering");
    assert!(removal.resolution().added_vcs <= ordering.resolution().added_vcs);
}

#[test]
fn repaired_designs_complete_a_simulated_workload() {
    let simulated = DesignFlow::from_benchmark(Benchmark::D36x6)
        .synthesize(SynthesisConfig::with_switches(10))
        .unwrap()
        .route_default()
        .unwrap()
        .resolve_deadlocks(&CycleBreaking::default())
        .unwrap()
        .simulate_with(
            &SimConfig {
                buffer_depth: 2,
                deadlock_threshold: 1_000,
                max_cycles: 500_000,
            },
            &TrafficConfig {
                packets_per_flow: 3,
                packet_length: 4,
                mean_gap_cycles: 4,
                seed: 5,
                ..TrafficConfig::default()
            },
        )
        .unwrap();
    let outcome = simulated.outcome();
    assert!(!outcome.deadlocked);
    assert_eq!(
        outcome.stats.delivered_packets,
        outcome.stats.injected_packets
    );
}

/// The paper's Figure 8 and Figure 9 grids, through the parallel + streaming
/// sweep API the figure binaries use: the sharded executor must produce the
/// exact same point sequence as the serial driver, while streaming every
/// completion to the observer.
#[test]
fn figure_grids_are_identical_serial_and_parallel() {
    let removal = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let strategies: &[&dyn DeadlockStrategy] = &[&removal, &ordering];
    for (benchmark, counts) in [
        (Benchmark::D26Media, 5..=25), // Figure 8
        (Benchmark::D36x8, 10..=35),   // Figure 9
    ] {
        let sweep = FlowSweep::new()
            .benchmark(benchmark)
            .switch_counts(counts)
            .power_estimates(false);
        let serial = sweep.run(strategies).unwrap();
        let mut streamed = 0;
        let parallel = sweep
            .clone()
            .worker_threads(2)
            .run_streaming(strategies, |_| streamed += 1)
            .unwrap();
        assert_eq!(serial, parallel, "{benchmark}: parallel must match serial");
        assert_eq!(streamed, serial.len(), "{benchmark}: every point streamed");
    }
}

#[test]
fn umbrella_reexports_are_usable() {
    // Smoke-test that every re-exported module is reachable through the
    // umbrella crate (what the examples rely on).
    let g: noc_suite::graph::DiGraph<(), ()> = noc_suite::graph::DiGraph::new();
    assert_eq!(g.node_count(), 0);
    assert_eq!(Benchmark::ALL.len(), 6);
    let params = TechParams::default();
    assert!(params.buffer_bits() > 0);
    // The flow API is reachable as noc_suite::flow.
    let flow = DesignFlow::from_benchmark(Benchmark::D26Media);
    assert_eq!(flow.label(), "D26_media");
}
