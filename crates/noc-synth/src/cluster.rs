//! Core-to-switch clustering.
//!
//! Cores that exchange a lot of traffic should share a switch so their flows
//! never enter the switch-to-switch network.  This module implements a
//! greedy, balanced affinity clustering: cores are considered in decreasing
//! order of total traffic and each is placed on the switch where it has the
//! highest affinity to already-placed cores, subject to a per-switch
//! capacity that keeps cluster sizes balanced.

use noc_topology::{CommGraph, CoreId};

/// A clustering of cores into `switch_count` groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `assignment[core.index()]` = switch index in `0..switch_count`.
    pub assignment: Vec<usize>,
    /// Number of clusters (= switches).
    pub switch_count: usize,
}

impl Clustering {
    /// The cluster (switch index) of `core`.
    pub fn cluster_of(&self, core: CoreId) -> usize {
        self.assignment[core.index()]
    }

    /// The cores assigned to `cluster`.
    pub fn members(&self, cluster: usize) -> Vec<CoreId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster)
            .map(|(i, _)| CoreId::from_index(i))
            .collect()
    }

    /// Size of the largest cluster.
    pub fn max_cluster_size(&self) -> usize {
        (0..self.switch_count)
            .map(|c| self.assignment.iter().filter(|&&a| a == c).count())
            .max()
            .unwrap_or(0)
    }

    /// Total communication bandwidth that stays inside a cluster (higher is
    /// better for the same switch count).
    pub fn internal_bandwidth(&self, comm: &CommGraph) -> f64 {
        comm.flows()
            .filter(|(_, f)| {
                self.assignment[f.source.index()] == self.assignment[f.destination.index()]
            })
            .map(|(_, f)| f.bandwidth)
            .sum()
    }
}

/// Greedy balanced affinity clustering of the cores of `comm` into
/// `switch_count` clusters.
///
/// The per-switch capacity is `ceil(core_count / switch_count)`, so clusters
/// stay within one core of each other in size — matching the area-balancing
/// behaviour of floorplan-aware synthesis tools.
///
/// # Panics
///
/// Panics if `switch_count` is zero.
pub fn cluster_cores(comm: &CommGraph, switch_count: usize) -> Clustering {
    assert!(switch_count > 0, "need at least one switch");
    let n = comm.core_count();
    let capacity = n.div_ceil(switch_count);
    let mut assignment = vec![usize::MAX; n];
    let mut sizes = vec![0usize; switch_count];

    // Order cores by total traffic (descending) so the heavy hitters anchor
    // the clusters; ties break on index for determinism.
    let mut order: Vec<CoreId> = comm.cores().map(|(id, _)| id).collect();
    let traffic = |c: CoreId| -> f64 {
        comm.flows_from(c).map(|(_, f)| f.bandwidth).sum::<f64>()
            + comm.flows_to(c).map(|(_, f)| f.bandwidth).sum::<f64>()
    };
    order.sort_by(|&a, &b| {
        traffic(b)
            .partial_cmp(&traffic(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index().cmp(&b.index()))
    });

    for core in order {
        // Affinity of this core to every cluster that still has room.
        let mut best_cluster = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for (cluster, &size) in sizes.iter().enumerate() {
            if size >= capacity {
                continue;
            }
            let score: f64 = comm
                .cores()
                .filter(|(other, _)| assignment[other.index()] == cluster)
                .map(|(other, _)| comm.affinity(core, other))
                .sum();
            // Prefer higher affinity; among equal affinities prefer the
            // emptier cluster (spreads isolated cores evenly).
            let tie_break = -(sizes[cluster] as f64) * 1e-6;
            if score + tie_break > best_score {
                best_score = score + tie_break;
                best_cluster = cluster;
            }
        }
        debug_assert_ne!(best_cluster, usize::MAX, "capacity guarantees a free slot");
        assignment[core.index()] = best_cluster;
        sizes[best_cluster] += 1;
    }

    Clustering {
        assignment,
        switch_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::benchmarks::Benchmark;

    fn pair_heavy_comm() -> CommGraph {
        // Two tightly-coupled pairs and two loners.
        let mut g = CommGraph::new();
        let c: Vec<_> = (0..6).map(|i| g.add_core(format!("c{i}"))).collect();
        g.add_flow(c[0], c[1], 1000.0);
        g.add_flow(c[1], c[0], 1000.0);
        g.add_flow(c[2], c[3], 1000.0);
        g.add_flow(c[3], c[2], 1000.0);
        g.add_flow(c[4], c[5], 1.0);
        g
    }

    #[test]
    fn heavy_pairs_share_a_cluster() {
        let comm = pair_heavy_comm();
        let clustering = cluster_cores(&comm, 3);
        assert_eq!(
            clustering.cluster_of(CoreId::from_index(0)),
            clustering.cluster_of(CoreId::from_index(1))
        );
        assert_eq!(
            clustering.cluster_of(CoreId::from_index(2)),
            clustering.cluster_of(CoreId::from_index(3))
        );
    }

    #[test]
    fn clusters_are_balanced() {
        let comm = Benchmark::D26Media.comm_graph();
        for switches in [2, 5, 8, 13, 26] {
            let clustering = cluster_cores(&comm, switches);
            let capacity = comm.core_count().div_ceil(switches);
            assert!(
                clustering.max_cluster_size() <= capacity,
                "{switches} switches"
            );
            // Every core is assigned.
            assert!(clustering.assignment.iter().all(|&a| a < switches));
        }
    }

    #[test]
    fn more_switches_never_increase_internal_bandwidth() {
        let comm = Benchmark::D36x8.comm_graph();
        let few = cluster_cores(&comm, 4).internal_bandwidth(&comm);
        let many = cluster_cores(&comm, 18).internal_bandwidth(&comm);
        assert!(few >= many);
    }

    #[test]
    fn one_switch_keeps_everything_internal() {
        let comm = pair_heavy_comm();
        let clustering = cluster_cores(&comm, 1);
        assert_eq!(clustering.internal_bandwidth(&comm), comm.total_bandwidth());
        assert_eq!(clustering.members(0).len(), comm.core_count());
    }

    #[test]
    fn clustering_is_deterministic() {
        let comm = Benchmark::D35Bott.comm_graph();
        assert_eq!(cluster_cores(&comm, 7), cluster_cores(&comm, 7));
    }

    #[test]
    #[should_panic(expected = "at least one switch")]
    fn zero_switches_panics() {
        cluster_cores(&pair_heavy_comm(), 0);
    }
}
