//! Criterion bench for the paper's runtime claim ("the method runs within
//! minutes even for the largest benchmark"): wall-clock of the
//! deadlock-removal algorithm alone on the largest benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_bench::{run_removal, synthesize_benchmark};
use noc_deadlock::removal::RemovalConfig;
use noc_topology::benchmarks::Benchmark;

fn runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_runtime");
    group.sample_size(10);
    for (benchmark, switches) in [
        (Benchmark::D26Media, 14usize),
        (Benchmark::D36x8, 14),
        (Benchmark::D36x8, 30),
        (Benchmark::D38Tvopd, 14),
    ] {
        let design = synthesize_benchmark(benchmark, switches).expect("synthesis succeeds");
        group.bench_with_input(
            BenchmarkId::new(benchmark.name(), switches),
            &design,
            |b, design| {
                b.iter(|| run_removal(design, &RemovalConfig::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, runtime);
criterion_main!(benches);
