//! Flit-level wormhole flow-control NoC simulator.
//!
//! The paper argues analytically (via the channel dependency graph) that its
//! modified designs cannot deadlock.  This crate closes the loop dynamically:
//! it simulates wormhole switching with virtual channels and credit-based
//! buffer management over an arbitrary [`Topology`](noc_topology::Topology)
//! and [`RouteSet`](noc_routing::RouteSet), detects runtime deadlocks
//! (in-flight packets that stop making progress), and reports latency and
//! throughput statistics.
//!
//! The model is intentionally simple but faithful to the properties that
//! matter for deadlock behaviour:
//!
//! * a **channel** (physical link × VC) is held by one packet from the
//!   moment its head flit is accepted until its tail flit leaves — the
//!   defining property of wormhole switching,
//! * each channel has a finite input buffer at the downstream switch
//!   (credit-based backpressure),
//! * one flit per channel per cycle,
//! * routes are static per flow (table-based), exactly the routes the
//!   deadlock analysis saw.
//!
//! Two engines share that model.  [`engine`] is the original VC-oblivious
//! walker with timeout-based detection; [`vc_engine`] is the VC-fidelity
//! subsystem: per-(link × VC) buffers sized from a strategy's
//! [`VcMap`](noc_deadlock::vcmap::VcMap), explicit [`credit`]-based flow
//! control, pluggable VC-allocation [`policy`]s (static assignment,
//! Duato-adaptive escape, and a deliberately unsafe single-VC baseline),
//! exact wait-for-graph deadlock [`detect`]ion, and an optional DBR-style
//! dynamic drain onto a recovery routing function.
//!
//! # Example
//!
//! ```
//! use noc_sim::{SimConfig, Simulator, TrafficConfig};
//! use noc_topology::{generators, CommGraph, CoreMap};
//! use noc_routing::shortest::route_all_shortest;
//!
//! let gen = generators::bidirectional_ring(4, 1.0);
//! let mut comm = CommGraph::new();
//! let a = comm.add_core("a");
//! let b = comm.add_core("b");
//! comm.add_flow(a, b, 200.0);
//! let mut map = CoreMap::new(2);
//! map.assign(a, gen.switches[0])?;
//! map.assign(b, gen.switches[2])?;
//! let routes = route_all_shortest(&gen.topology, &comm, &map)?;
//!
//! let mut sim = Simulator::new(&gen.topology, &comm, &routes, &SimConfig::default());
//! let outcome = sim.run(&TrafficConfig { packets_per_flow: 20, ..TrafficConfig::default() });
//! assert!(outcome.stats.delivered_packets > 0);
//! assert!(!outcome.deadlocked);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod credit;
pub mod detect;
pub mod engine;
pub mod fault;
pub mod packet;
pub mod policy;
pub mod stats;
pub mod traffic;
pub mod vc_engine;

pub use engine::{SimConfig, SimOutcome, Simulator};
pub use fault::{FaultEvent, FaultKind, FaultPlan, StormConfig};
pub use packet::{Flit, FlitKind, Packet, PacketId};
pub use policy::{AdaptiveEscape, AssignedVc, SingleVc, VcChoice, VcPolicy};
pub use stats::{LatencyBucket, SimStats};
pub use traffic::{TrafficConfig, TrafficPattern};
pub use vc_engine::{
    DeadlockEvent, DetectionKind, DrainStats, VcSimConfig, VcSimOutcome, VcSimulator,
};
