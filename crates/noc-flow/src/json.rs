//! Hand-rolled, dependency-free JSON support for sweep results.
//!
//! The offline build environment has no crates.io access, so instead of
//! serde this module provides the small slice of JSON the suite needs:
//!
//! * [`ToJson`] — a writer trait implemented for the sweep result types
//!   ([`SweepPoint`], [`StrategyOutcome`],
//!   [`RemovalReport`]) and the primitives they are built from, with an
//!   escaping-correct string encoder,
//! * [`JsonValue`] — a tiny parsed representation with a strict parser,
//!   used by the figure binaries' `--json` artifact checker and the
//!   round-trip tests.
//!
//! Output is deterministic: object keys are emitted in declaration order,
//! numbers through Rust's `Display` (which never produces exponent
//! notation), non-finite floats as `null`.

use crate::sweep::{CertifyOutcome, FaultRunStats, StrategyOutcome, StrategySimStats, SweepPoint};
use noc_deadlock::cost::Direction;
use noc_deadlock::escape::EscapeChannelResult;
use noc_deadlock::recovery::{RecoveryResult, RecoveryStep};
use noc_deadlock::report::{BreakStep, CdgMaintenanceStats, RemovalReport, StrategyKind};
use noc_sim::{DrainStats, LatencyBucket, SimStats};
use noc_topology::benchmarks::Benchmark;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Serializes a value as JSON into a growing buffer.
///
/// Implementations must append exactly one valid JSON value to `out`.
pub trait ToJson {
    /// Appends this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// This value's JSON encoding as a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Appends `text` as a JSON string literal (quotes included), escaping
/// quotes, backslashes and every control character.
pub fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for f64 {
    /// Non-finite values have no JSON encoding and are emitted as `null`,
    /// like every mainstream serializer's lossy mode.
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(value) => value.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

/// Incremental JSON object writer used by the struct impls below (and by
/// downstream crates adding [`ToJson`] to their own result types).
///
/// # Example
///
/// ```
/// use noc_flow::json::ObjectWriter;
///
/// let mut out = String::new();
/// ObjectWriter::new(&mut out)
///     .field("name", &"fig8")
///     .field("points", &3usize)
///     .finish();
/// assert_eq!(out, r#"{"name":"fig8","points":3}"#);
/// ```
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens an object (writes `{`).
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    /// Writes one `"key": value` member.
    pub fn field(mut self, key: &str, value: &dyn ToJson) -> Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, key);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    /// Closes the object (writes `}`).
    pub fn finish(self) {
        self.out.push('}');
    }
}

impl ToJson for Benchmark {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self.name());
    }
}

impl ToJson for Direction {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, &self.to_string());
    }
}

impl ToJson for BreakStep {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("cycle_len", &self.cycle_len)
            .field("direction", &self.direction)
            .field("vcs_added", &self.vcs_added)
            .field("flows_rerouted", &self.flows_rerouted)
            .finish();
    }
}

impl ToJson for RemovalReport {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("added_vcs", &self.added_vcs)
            .field("cycles_broken", &self.cycles_broken)
            .field("already_deadlock_free", &self.already_deadlock_free)
            .field("steps", &self.steps)
            .field("cdg", &self.cdg)
            .finish();
    }
}

impl ToJson for CdgMaintenanceStats {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("incremental", &self.incremental())
            .field("full_builds", &self.full_builds)
            .field("deps_removed", &self.deps_removed())
            .field("deps_added", &self.deps_added())
            .field("channels_added", &self.channels_added())
            .finish();
    }
}

impl ToJson for StrategyKind {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self.name());
    }
}

impl ToJson for EscapeChannelResult {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("added_vcs", &self.added_vcs)
            .field("layers", &self.layers)
            .field("escaped_flows", &self.escaped_flows)
            .field("escape_hops", &self.escape_hops)
            .field("root", &self.root.index())
            .finish();
    }
}

impl ToJson for RecoveryStep {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("sccs", &self.sccs)
            .field("scc_channels", &self.scc_channels)
            .field("flows_drained", &self.flows_drained)
            .field("hops_before", &self.hops_before)
            .field("hops_after", &self.hops_after)
            .finish();
    }
}

impl ToJson for RecoveryResult {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("reconfigurations", &self.reconfigurations)
            .field("flows_reconfigured", &self.flows_reconfigured)
            .field("extra_hops", &self.extra_hops())
            .field("already_deadlock_free", &self.already_deadlock_free)
            .field("root", &self.root.index())
            .field("steps", &self.steps)
            .finish();
    }
}

impl ToJson for LatencyBucket {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("lower", &self.lower)
            .field("upper", &self.upper)
            .field("count", &self.count)
            .finish();
    }
}

impl ToJson for SimStats {
    fn write_json(&self, out: &mut String) {
        let percentiles = self.latency_percentiles(&[50.0, 95.0, 99.0]);
        ObjectWriter::new(out)
            .field("injected_packets", &self.injected_packets)
            .field("delivered_packets", &self.delivered_packets)
            .field("delivered_flits", &self.delivered_flits)
            .field("cycles", &self.cycles)
            .field("mean_latency", &self.mean_latency())
            .field("p50_latency", &percentiles[0])
            .field("p95_latency", &percentiles[1])
            .field("p99_latency", &percentiles[2])
            .field("max_latency", &self.max_latency_cycles)
            .field(
                "throughput_flits_per_cycle",
                &self.throughput_flits_per_cycle(),
            )
            .field("delivery_ratio", &self.delivery_ratio())
            .field("latency_histogram", &self.latency_histogram())
            .finish();
    }
}

impl ToJson for DrainStats {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("events", &self.events)
            .field("packets_drained", &self.packets_drained)
            .field("flows_reconfigured", &self.flows_reconfigured)
            .finish();
    }
}

impl ToJson for StrategySimStats {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("injected", &self.injected)
            .field("delivered", &self.delivered)
            .field("deadlocked", &self.deadlocked)
            .field("mean_latency", &self.mean_latency)
            .field("p50_latency", &self.p50_latency)
            .field("p95_latency", &self.p95_latency)
            .field("p99_latency", &self.p99_latency)
            .field("max_latency", &self.max_latency)
            .field("throughput", &self.throughput)
            .field("cycles", &self.cycles)
            .finish();
    }
}

impl ToJson for FaultRunStats {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("faults_injected", &self.faults_injected)
            .field("reconfig_events", &self.reconfig_events)
            .field("epochs_committed", &self.epochs_committed)
            .field("cyclic_commits", &self.cyclic_commits)
            .field("drain_fallbacks", &self.drain_fallbacks)
            .field("packets_drained", &self.packets_drained)
            .field("flows_rerouted", &self.flows_rerouted)
            .field("unreachable_flows", &self.unreachable_flows)
            .field("unreachable_packets", &self.unreachable_packets)
            .field("injected", &self.injected)
            .field("delivered", &self.delivered)
            .field("delivered_fraction", &self.delivered_fraction)
            .field("mean_latency", &self.mean_latency)
            .field("connected", &self.connected)
            .field("deadlocked", &self.deadlocked)
            .finish();
    }
}

impl ToJson for CertifyOutcome {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("verdict", &self.verdict)
            .field("cdg_cyclic", &self.cdg_cyclic)
            .field("witness_worms", &self.witness_worms)
            .field("search_steps", &self.search_steps)
            .finish();
    }
}

impl ToJson for StrategyOutcome {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("strategy", &self.strategy)
            .field("kind", &self.kind)
            .field("added_vcs", &self.added_vcs)
            .field("cycles_broken", &self.cycles_broken)
            .field("mean_hops", &self.mean_hops)
            .field("power_mw", &self.power_mw)
            .field("area_um2", &self.area_um2)
            .field("sim", &self.sim)
            .field("certify", &self.certify)
            .field("fault", &self.fault)
            .finish();
    }
}

impl ToJson for SweepPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("switch_count", &self.switch_count)
            .field("active_flows", &self.active_flows)
            .field("mean_hops", &self.mean_hops)
            .field("original_power_mw", &self.original_power_mw)
            .field("original_area_um2", &self.original_area_um2)
            .field("outcomes", &self.outcomes)
            .finish();
    }
}

/// A parsed JSON document (strict subset of ECMA-404: no trailing commas,
/// no comments, objects as ordered key/value lists).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep their document order (duplicates preserved).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (surrounding whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up a key in an object (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value; `None` for non-numbers.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

impl ToJson for JsonValue {
    fn write_json(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => b.write_json(out),
            JsonValue::Number(n) => n.write_json(out),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => items.write_json(out),
            JsonValue::Object(members) => {
                let mut writer = ObjectWriter::new(out);
                for (key, value) in members {
                    writer = writer.field(key, value);
                }
                writer.finish();
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Containers deeper than this are rejected: the parser is recursive
/// descent, so a depth cap turns pathological inputs (`[[[[…`) into a
/// [`JsonParseError`] instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number characters are ASCII");
        let number: f64 = text.parse().expect("grammar guarantees a float literal");
        // `f64::from_str` never fails on the JSON grammar but saturates to
        // infinity (e.g. "1e999"); a non-finite Number would have no JSON
        // encoding on the writer side, so a strict parser rejects it.
        if !number.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(JsonValue::Number(number))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut result = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(result);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => result.push('"'),
                        Some(b'\\') => result.push('\\'),
                        Some(b'/') => result.push('/'),
                        Some(b'n') => result.push('\n'),
                        Some(b'r') => result.push('\r'),
                        Some(b't') => result.push('\t'),
                        Some(b'b') => result.push('\u{08}'),
                        Some(b'f') => result.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one code point.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("lone low surrogate"))?
                            };
                            result.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let ch = rest.chars().next().expect("peek saw a byte");
                    result.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`) as a code unit.
    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let mut unit = 0u32;
        // Digit by digit: `u32::from_str_radix` would also accept a leading
        // sign, which is not valid JSON.
        for &byte in &self.bytes[self.pos..end] {
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid \\u escape"))?;
            unit = unit * 16 + digit;
        }
        self.pos = end;
        Ok(unit)
    }
}

// ---------------------------------------------------------------------------
// Artifact envelope
// ---------------------------------------------------------------------------

/// Version of the artifact envelope and the per-figure payload schemas,
/// checked by `ci/check_artifact.py`.  Bump it whenever a payload field is
/// added, removed or changes meaning (v2 added the envelope `schema` field
/// itself, the per-outcome `kind`/`mean_hops` fields of sweep points, and
/// the `fig_strategy_matrix` artifact; v3 added the `fig_sim_strategies`
/// artifact, the per-outcome `sim` block, and the `fixed_p95_latency`
/// column of `sim_validation`; v4 added the `fig_conservatism` artifact and
/// the per-outcome `certify` block of sweep points; v5 added the
/// `fig_scale` artifact; v6 added the `fig_faults` artifact and the
/// per-outcome `fault` block of sweep points; v7 unified the envelope
/// behind [`Artifact`] with this crate-level constant and added the
/// `noc-jobs` resumable job store, whose on-disk records carry the same
/// version; v8 added the `noc_trace` telemetry artifact (envelope plus a
/// Chrome `traceEvents` array — see [`crate::trace`]) and replaced the
/// lump `rebuild_ms`/`incremental_ms` timing fields of `cdg_incremental`
/// and `fig_scale` with telemetry-attributed per-phase breakdowns).
pub const SCHEMA_VERSION: usize = 8;

/// A JSON value that is *already serialized*: its text is spliced into the
/// output verbatim.  This is how the job store re-emits recorded task
/// results byte-identically instead of round-tripping them through
/// [`JsonValue`].
///
/// The wrapped text must be exactly one valid JSON value; [`Artifact::write`]
/// still self-validates the final document, so a bad splice fails loudly at
/// the writer instead of producing an unreadable artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawJson<'a>(pub &'a str);

impl ToJson for RawJson<'_> {
    fn write_json(&self, out: &mut String) {
        out.push_str(self.0);
    }
}

/// The versioned `{"figure", "schema", "data"}` envelope every figure and
/// job artifact is wrapped in — one generic writer/parser instead of
/// per-figure envelope code.
///
/// # Example
///
/// ```
/// use noc_flow::json::{Artifact, ParsedArtifact, SCHEMA_VERSION};
///
/// let text = Artifact::new("fig8_d26_media", &vec![1usize, 2, 3]).render();
/// let parsed = ParsedArtifact::parse(&text).unwrap();
/// assert_eq!(parsed.figure, "fig8_d26_media");
/// assert_eq!(parsed.schema, SCHEMA_VERSION);
/// assert_eq!(parsed.data.as_array().unwrap().len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Artifact<'a, T: ToJson + ?Sized> {
    /// Figure (or job kind) name carried in the envelope.
    pub figure: &'a str,
    /// The payload serialized under `"data"`.
    pub data: &'a T,
}

impl<'a, T: ToJson + ?Sized> Artifact<'a, T> {
    /// Wraps a payload in the envelope.
    pub fn new(figure: &'a str, data: &'a T) -> Self {
        Artifact { figure, data }
    }

    /// The envelope document, newline-terminated.
    pub fn render(&self) -> String {
        let mut out = self.to_json();
        out.push('\n');
        out
    }

    /// Renders the envelope, re-parses it (so a serializer bug can never
    /// produce an unreadable artifact), and writes it to `path` atomically
    /// — temp file in the destination directory plus rename, so readers
    /// never observe a torn artifact and a crash mid-write leaves any
    /// previous version intact.
    pub fn write(&self, path: &Path) -> Result<(), ArtifactError> {
        let out = self.render();
        ParsedArtifact::parse(&out)?;
        write_atomic(path, out.as_bytes()).map_err(|source| ArtifactError::Io {
            path: path.to_path_buf(),
            source,
        })
    }
}

impl<T: ToJson + ?Sized> ToJson for Artifact<'_, T> {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("figure", &self.figure)
            .field("schema", &SCHEMA_VERSION)
            .field("data", &self.data)
            .finish();
    }
}

/// An [`Artifact`] envelope read back from text, version-checked against
/// [`SCHEMA_VERSION`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArtifact {
    /// Figure (or job kind) name from the envelope.
    pub figure: String,
    /// Envelope schema version (always [`SCHEMA_VERSION`] after a
    /// successful parse).
    pub schema: usize,
    /// The payload under `"data"`.
    pub data: JsonValue,
}

impl ParsedArtifact {
    /// Parses and validates an envelope document.
    pub fn parse(text: &str) -> Result<ParsedArtifact, ArtifactError> {
        let value = JsonValue::parse(text)?;
        let figure = value
            .get("figure")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ArtifactError::Envelope("missing string field \"figure\"".into()))?
            .to_string();
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| ArtifactError::Envelope("missing numeric field \"schema\"".into()))?;
        if schema != SCHEMA_VERSION as f64 {
            return Err(ArtifactError::SchemaMismatch { found: schema });
        }
        let data = value
            .get("data")
            .ok_or_else(|| ArtifactError::Envelope("missing field \"data\"".into()))?
            .clone();
        Ok(ParsedArtifact {
            figure,
            schema: SCHEMA_VERSION,
            data,
        })
    }
}

/// Why an artifact could not be written or read back.
#[derive(Debug)]
pub enum ArtifactError {
    /// The document is not valid JSON.
    Json(JsonParseError),
    /// The document parses but the envelope is malformed.
    Envelope(String),
    /// The envelope's schema version differs from [`SCHEMA_VERSION`].
    SchemaMismatch {
        /// The version found in the document.
        found: f64,
    },
    /// A filesystem operation failed.
    Io {
        /// The artifact path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "artifact is not valid JSON: {e}"),
            ArtifactError::Envelope(message) => write!(f, "malformed artifact envelope: {message}"),
            ArtifactError::SchemaMismatch { found } => write!(
                f,
                "artifact schema is {found}, this build expects {SCHEMA_VERSION}"
            ),
            ArtifactError::Io { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Json(e) => Some(e),
            ArtifactError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<JsonParseError> for ArtifactError {
    fn from(error: JsonParseError) -> Self {
        ArtifactError::Json(error)
    }
}

/// Distinguishes concurrent writers' temp files (two processes committing
/// into the same directory must never rename each other's half-written
/// file into place).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: the data goes to a uniquely named
/// temp file in the destination directory (created if missing), is synced,
/// and is renamed over `path` — so a crash at any point leaves either the
/// old file or the new one, never a torn mix.  Shared by the artifact
/// writer and the job store's commit path.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    std::fs::create_dir_all(dir)?;
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{} has no file name", path.display()),
        )
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Persist the rename itself (best effort: directory handles are not
    // syncable on every platform).
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\r\u{08}\u{0C}\u{01}ü");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\r\\b\\f\\u0001ü\"");
        // And the parser reverses it exactly.
        assert_eq!(
            JsonValue::parse(&out).unwrap(),
            JsonValue::String("a\"b\\c\nd\te\r\u{08}\u{0C}\u{01}ü".to_string())
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(1.5f64.to_json(), "1.5");
    }

    #[test]
    fn options_vectors_and_primitives() {
        assert_eq!(None::<f64>.to_json(), "null");
        assert_eq!(Some(3usize).to_json(), "3");
        assert_eq!(vec![1usize, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(true.to_json(), "true");
        assert_eq!("x".to_json(), "\"x\"");
        assert_eq!(Vec::<usize>::new().to_json(), "[]");
    }

    #[test]
    fn parser_accepts_the_grammar() {
        let doc = r#" {"a": [1, -2.5, 1e3, true, false, null], "b": {"c": "d"}, "e": []} "#;
        let value = JsonValue::parse(doc).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[2].as_number(),
            Some(1000.0)
        );
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("d")
        );
        assert_eq!(value.get("e").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"",
            "tru",
            "[1] extra",
            "{\"a\" 1}",
            "\u{7f}\"unclosed",
            "nan",
            "+1",
            "--1",
            "\"\\ud800\"",
            "\"\\ud800\\u0020\"",
            "\"\\u+061\"",
            "\"\\u-061\"",
            "1e999",
            "-1e999",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parser_rejects_pathological_nesting_instead_of_overflowing() {
        let deep_ok = format!("{}0{}", "[".repeat(128), "]".repeat(128));
        assert!(JsonValue::parse(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(129), "]".repeat(129));
        let err = JsonValue::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"));
        // Far past any plausible stack limit: must error, not abort.
        assert!(JsonValue::parse(&"[".repeat(200_000)).is_err());
        assert!(JsonValue::parse(&"{\"k\":".repeat(200_000)).is_err());
        // Sibling (non-nested) containers do not accumulate depth.
        let wide = format!("[{}[]]", "[],".repeat(500));
        assert!(JsonValue::parse(&wide).is_ok());
    }

    #[test]
    fn parser_handles_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            JsonValue::parse("\"\\u00fc\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("ü😀".to_string())
        );
    }

    #[test]
    fn json_value_round_trips_through_display() {
        let doc = r#"{"a":[1,2.5,true,null],"b":"x\"y","c":{}}"#;
        let value = JsonValue::parse(doc).unwrap();
        let rendered = value.to_json();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), value);
        assert_eq!(rendered, doc);
    }

    #[test]
    fn strategy_stat_blocks_serialize() {
        use noc_topology::SwitchId;
        assert_eq!(StrategyKind::EscapeChannel.to_json(), "\"escape-channel\"");

        let escape = EscapeChannelResult {
            added_vcs: 3,
            layers: 2,
            escaped_flows: 4,
            escape_hops: 7,
            root: SwitchId::from_index(0),
        };
        let value = JsonValue::parse(&escape.to_json()).unwrap();
        assert_eq!(value.get("added_vcs").unwrap().as_number(), Some(3.0));
        assert_eq!(value.get("layers").unwrap().as_number(), Some(2.0));
        assert_eq!(value.get("root").unwrap().as_number(), Some(0.0));

        let recovery = RecoveryResult {
            reconfigurations: 1,
            flows_reconfigured: 5,
            steps: vec![RecoveryStep {
                sccs: 2,
                scc_channels: 9,
                flows_drained: 5,
                hops_before: 10,
                hops_after: 14,
            }],
            already_deadlock_free: false,
            root: SwitchId::from_index(1),
        };
        let value = JsonValue::parse(&recovery.to_json()).unwrap();
        assert_eq!(value.get("extra_hops").unwrap().as_number(), Some(4.0));
        let steps = value.get("steps").unwrap().as_array().unwrap();
        assert_eq!(steps[0].get("sccs").unwrap().as_number(), Some(2.0));
        assert_eq!(
            value.get("already_deadlock_free"),
            Some(&JsonValue::Bool(false))
        );
    }

    #[test]
    fn removal_report_serializes_with_steps() {
        let report = RemovalReport {
            added_vcs: 2,
            cycles_broken: 1,
            steps: vec![BreakStep {
                cycle_len: 4,
                direction: Direction::Forward,
                vcs_added: 2,
                flows_rerouted: 3,
            }],
            already_deadlock_free: false,
            cdg: CdgMaintenanceStats {
                full_builds: 1,
                step_deltas: vec![noc_deadlock::report::CdgDeltaStats {
                    deps_removed: 2,
                    deps_added: 1,
                    channels_added: 2,
                    dirty_nodes: 4,
                }],
            },
        };
        let json = report.to_json();
        let value = JsonValue::parse(&json).expect("valid JSON");
        assert_eq!(value.get("added_vcs").unwrap().as_number(), Some(2.0));
        let steps = value.get("steps").unwrap().as_array().unwrap();
        assert_eq!(steps[0].get("direction").unwrap().as_str(), Some("forward"));
        let cdg = value.get("cdg").unwrap();
        assert_eq!(cdg.get("incremental"), Some(&JsonValue::Bool(true)));
        assert_eq!(cdg.get("deps_removed").unwrap().as_number(), Some(2.0));
    }

    #[test]
    fn artifact_envelope_round_trips() {
        let data = vec![1usize, 2, 3];
        let text = Artifact::new("fig_demo", &data).render();
        assert!(text.ends_with('\n'));
        let parsed = ParsedArtifact::parse(&text).expect("valid envelope");
        assert_eq!(parsed.figure, "fig_demo");
        assert_eq!(parsed.schema, SCHEMA_VERSION);
        assert_eq!(parsed.data.as_array().unwrap().len(), 3);
    }

    #[test]
    fn artifact_parse_rejects_wrong_schema_and_missing_fields() {
        let stale = format!(
            "{{\"figure\":\"f\",\"schema\":{},\"data\":[]}}",
            SCHEMA_VERSION - 1
        );
        assert!(matches!(
            ParsedArtifact::parse(&stale),
            Err(ArtifactError::SchemaMismatch { .. })
        ));
        assert!(matches!(
            ParsedArtifact::parse("{\"schema\":7,\"data\":[]}"),
            Err(ArtifactError::Envelope(_))
        ));
        assert!(matches!(
            ParsedArtifact::parse("not json"),
            Err(ArtifactError::Json(_))
        ));
    }

    #[test]
    fn raw_json_splices_verbatim() {
        let raw = RawJson("{\"a\":1}");
        let mut out = String::new();
        ObjectWriter::new(&mut out).field("inner", &raw).finish();
        assert_eq!(out, "{\"inner\":{\"a\":1}}");
    }

    #[test]
    fn write_atomic_replaces_and_creates_parents() {
        let dir = std::env::temp_dir().join(format!(
            "noc-json-atomic-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let path = dir.join("nested").join("artifact.json");
        write_atomic(&path, b"first").expect("initial write");
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn artifact_write_is_readable_back() {
        let dir = std::env::temp_dir().join(format!(
            "noc-json-artifact-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let path = dir.join("fig.json");
        let data = vec![0.5f64, 1.25];
        Artifact::new("fig_demo", &data)
            .write(&path)
            .expect("write");
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = ParsedArtifact::parse(&text).unwrap();
        assert_eq!(parsed.figure, "fig_demo");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
