//! The cross-job content-hash result cache.
//!
//! Task results are keyed by the SHA-256 digest of `{"job": <canonical
//! spec>, "task": <index>}` — the full design + configuration content of
//! the task, independent of job id, thread count, or store directory.  A
//! re-submitted identical job therefore finds every task here and performs
//! zero recomputation, even into a fresh job directory.
//!
//! Entries live at `<cache>/<first two hex chars>/<digest>.json` (fanned
//! out so a directory never accumulates every entry) and are written
//! atomically.  An entry is two NDJSON lines — `{"digest", "key"}`
//! metadata, then the recorded result text verbatim — so the result can be
//! re-spliced byte-identically without re-rendering, no matter what the
//! key or the result contain.  The cache is strictly best-effort: a
//! missing, unreadable, or digest-mismatched entry is a miss, and a failed
//! store is ignored — correctness always comes from recomputation plus the
//! job store.

use noc_flow::json::{write_atomic, JsonValue, ObjectWriter, RawJson};
use std::path::{Path, PathBuf};

/// A content-addressed task-result cache rooted at a directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// Opens (lazily — nothing is created until the first store) a cache
    /// rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ArtifactCache { root: root.into() }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        let shard = digest.get(..2).unwrap_or("xx");
        self.root.join(shard).join(format!("{digest}.json"))
    }

    /// Looks up a task result by digest, returning its recorded result
    /// text verbatim.  Any problem with the entry is treated as a miss.
    pub fn lookup(&self, digest: &str) -> Option<String> {
        let text = std::fs::read_to_string(self.entry_path(digest)).ok()?;
        let (meta, result) = text.split_once('\n')?;
        let meta = JsonValue::parse(meta).ok()?;
        if meta.get("digest").and_then(JsonValue::as_str) != Some(digest) {
            return None;
        }
        let result = result.strip_suffix('\n')?;
        JsonValue::parse(result).ok()?;
        Some(result.to_string())
    }

    /// Stores a task result under its digest, best-effort: errors are
    /// swallowed (the caller still holds the result).  `key` is the
    /// pre-image of the digest, kept in the entry for auditability.
    pub fn store(&self, digest: &str, key: &str, result: &str) {
        let mut out = String::new();
        ObjectWriter::new(&mut out)
            .field("digest", &digest)
            .field("key", &RawJson(key))
            .finish();
        out.push('\n');
        out.push_str(result);
        out.push('\n');
        let _ = write_atomic(&self.entry_path(digest), out.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_rejects_mismatched_entries() {
        let root = std::env::temp_dir().join(format!(
            "noc-jobs-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let cache = ArtifactCache::new(&root);
        let digest = "ab".repeat(32);
        assert_eq!(cache.lookup(&digest), None, "empty cache misses");

        let result = "{\"result\":[1,2,{\"x\":0.1}]}";
        cache.store(&digest, "{\"job\":\"j\",\"task\":0}", result);
        assert_eq!(cache.lookup(&digest).as_deref(), Some(result));

        // An entry whose recorded digest disagrees with its filename is a
        // miss, not a wrong answer.
        let other = "cd".repeat(32);
        let moved = root.join("cd").join(format!("{other}.json"));
        std::fs::create_dir_all(moved.parent().unwrap()).unwrap();
        std::fs::copy(root.join("ab").join(format!("{digest}.json")), &moved).unwrap();
        assert_eq!(cache.lookup(&other), None);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
