//! Reproduces Figure 9: extra VCs versus switch count for D36_8 (36 cores,
//! fan-out 8), resource ordering versus the deadlock-removal algorithm.
//!
//! The sweep runs sharded across worker threads (progress on stderr); pass
//! `--threads <n>` to pin the worker count (default: auto-size to the
//! machine) and `--json <path>` to also write the series as a JSON artifact
//! for plotting outside Rust.

use noc_bench::artifact::FigureCli;
use noc_bench::{sweeps, vc_overhead_sweep_streaming};
use noc_topology::benchmarks::Benchmark;

fn main() {
    let args = FigureCli::parse("fig9_d36_8");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!("# Figure 9 — D36_8: extra VCs vs. switch count");
    println!(
        "{:>12} {:>22} {:>22} {:>14}",
        "switches", "resource_ordering_vc", "deadlock_removal_vc", "cycles_broken"
    );
    let points = vc_overhead_sweep_streaming(
        Benchmark::D36x8,
        sweeps::FIG9_SWITCH_COUNTS,
        args.threads,
        |progress| {
            eprintln!(
                "[{}/{}] {} switches done",
                progress.completed, progress.total, progress.point.switch_count
            );
        },
    );
    for point in &points {
        println!(
            "{:>12} {:>22} {:>22} {:>14}",
            point.switch_count,
            point.resource_ordering_vcs,
            point.deadlock_removal_vcs,
            point.cycles_broken
        );
    }
    args.write_artifact(&points);
}
