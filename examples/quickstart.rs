//! Quickstart: build the paper's Figure 1 ring design, detect the deadlock
//! condition, remove it with the paper's algorithm and compare against the
//! resource-ordering baseline.
//!
//! Run with `cargo run --example quickstart`.

use noc_suite::deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_suite::deadlock::{apply_resource_ordering, verify};
use noc_suite::routing::shortest::route_all_shortest;
use noc_suite::topology::{CommGraph, CoreMap, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The topology of Figure 1: four switches in a unidirectional ring.
    let mut topology = Topology::new();
    let switches: Vec<_> = (1..=4)
        .map(|i| topology.add_switch(format!("SW{i}")))
        .collect();
    for i in 0..4 {
        topology.add_link(switches[i], switches[(i + 1) % 4], 1000.0);
    }

    // --- 2. Four cores, one per switch, with the four flows of the example.
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("core{i}"))).collect();
    comm.add_flow(cores[0], cores[3], 200.0); // F1: three hops
    comm.add_flow(cores[2], cores[0], 200.0); // F2
    comm.add_flow(cores[3], cores[1], 200.0); // F3
    comm.add_flow(cores[0], cores[2], 200.0); // F4
    let mut core_map = CoreMap::new(comm.core_count());
    for (i, &core) in cores.iter().enumerate() {
        core_map.assign(core, switches[i])?;
    }

    // --- 3. Deadlock-oblivious shortest-path routes (the paper's input).
    let mut routes = route_all_shortest(&topology, &comm, &core_map)?;

    // --- 4. The CDG has a cycle: the design can deadlock.
    match verify::check_deadlock_free(&topology, &routes) {
        Ok(()) => println!("input design is already deadlock-free"),
        Err(cycle) => println!("input design CAN deadlock: {cycle}"),
    }

    // --- 5. Baseline for comparison: resource ordering on a copy.
    let mut ro_topology = topology.clone();
    let mut ro_routes = routes.clone();
    let ro = apply_resource_ordering(&mut ro_topology, &mut ro_routes)?;
    println!(
        "resource ordering:   {} extra VCs ({} channel classes)",
        ro.added_vcs, ro.classes
    );

    // --- 6. The paper's algorithm.
    let report = remove_deadlocks(&mut topology, &mut routes, &RemovalConfig::default())?;
    println!(
        "deadlock removal:    {} extra VC(s), {} cycle(s) broken",
        report.added_vcs, report.cycles_broken
    );
    verify::check_deadlock_free(&topology, &routes)
        .expect("the removal algorithm guarantees an acyclic CDG");
    println!("after removal the CDG is acyclic: the design cannot deadlock");
    Ok(())
}
