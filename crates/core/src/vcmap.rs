//! The VC assignment a deadlock strategy produced, as a standalone artifact.
//!
//! Every [`DeadlockStrategy`](https://docs.rs/noc-flow) encodes its virtual
//! channel spend in the design itself: the repaired [`Topology`] carries the
//! per-link VC counts and the repaired [`RouteSet`] carries the per-hop
//! [`Channel`](noc_topology::Channel) (link × VC) each flow was assigned.
//! The VC-fidelity
//! simulator (`noc_sim::vc_engine`) needs exactly that information — how
//! many buffers each link multiplexes, and which of them a flow's packets
//! are *supposed* to ride at every hop — without dragging the whole design
//! along.  [`VcMap`] is that shared seam: a compact, strategy-agnostic
//! snapshot of the VC assignment, built once per repaired design and handed
//! to the simulator (and to any [`VcPolicy`](https://docs.rs/noc-sim) that
//! interprets the assignment adaptively, Duato-style).

use noc_routing::RouteSet;
use noc_topology::{FlowId, LinkId, Topology};

/// A strategy's virtual-channel assignment: per-link VC counts plus the VC
/// index every flow was assigned at every hop of its route.
///
/// # Example
///
/// ```
/// use noc_deadlock::vcmap::VcMap;
/// use noc_routing::{Route, RouteSet};
/// use noc_topology::{Channel, FlowId, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_switch("a");
/// let b = topo.add_switch("b");
/// let c = topo.add_switch("c");
/// let l0 = topo.add_link(a, b, 1.0);
/// let l1 = topo.add_link(b, c, 1.0);
/// let escape = topo.add_vc(l1)?;
/// let mut routes = RouteSet::new(1);
/// routes.set_route(
///     FlowId::from_index(0),
///     Route::new(vec![Channel::base(l0), escape]),
/// );
///
/// let map = VcMap::from_design(&topo, &routes);
/// assert_eq!(map.link_vcs(l0), 1);
/// assert_eq!(map.link_vcs(l1), 2);
/// assert_eq!(map.assigned_vc(FlowId::from_index(0), 1), Some(1));
/// assert_eq!(map.total_channels(), 3);
/// assert!(!map.is_single_vc());
/// # Ok::<(), noc_topology::error::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VcMap {
    /// Number of VCs multiplexed on each link, indexed by [`LinkId`].
    link_vcs: Vec<usize>,
    /// Per flow, the assigned VC index of every hop of its route.
    flow_vcs: Vec<Vec<usize>>,
}

impl VcMap {
    /// Snapshots the VC assignment of a (possibly repaired) design: the
    /// per-link VC counts come from `topology`, the per-hop assignments from
    /// the [`Channel`](noc_topology::Channel)s of `routes`.
    pub fn from_design(topology: &Topology, routes: &RouteSet) -> Self {
        VcMap {
            link_vcs: topology.links().map(|(_, link)| link.vcs).collect(),
            flow_vcs: (0..routes.flow_count())
                .map(|index| {
                    routes
                        .route(FlowId::from_index(index))
                        .map(|route| route.channels().iter().map(|c| c.vc).collect())
                        .unwrap_or_default()
                })
                .collect(),
        }
    }

    /// Number of VCs on `link` (0 for a link unknown to the snapshot, which
    /// never happens for maps built by [`from_design`](Self::from_design)
    /// and queried with the same design).
    pub fn link_vcs(&self, link: LinkId) -> usize {
        self.link_vcs.get(link.index()).copied().unwrap_or(0)
    }

    /// The VC index assigned to `flow` at hop `hop` of its route, or `None`
    /// when the flow or hop is out of range (same-switch flows have no hops).
    pub fn assigned_vc(&self, flow: FlowId, hop: usize) -> Option<usize> {
        self.flow_vcs.get(flow.index())?.get(hop).copied()
    }

    /// Number of hops of `flow`'s route (0 for same-switch flows and
    /// unknown flow ids).
    pub fn flow_hops(&self, flow: FlowId) -> usize {
        self.flow_vcs
            .get(flow.index())
            .map(Vec::len)
            .unwrap_or_default()
    }

    /// Number of flows covered by the snapshot.
    pub fn flow_count(&self) -> usize {
        self.flow_vcs.len()
    }

    /// Number of links covered by the snapshot.
    pub fn link_count(&self) -> usize {
        self.link_vcs.len()
    }

    /// Total channel count (sum of VCs over all links) — the buffer space a
    /// VC-fidelity simulator must materialise.
    pub fn total_channels(&self) -> usize {
        self.link_vcs.iter().sum()
    }

    /// Extra VCs beyond the single base VC of every link — the strategy's
    /// headline cost, matching [`Topology::extra_vc_count`].
    pub fn extra_vcs(&self) -> usize {
        self.link_vcs.iter().map(|&vcs| vcs.saturating_sub(1)).sum()
    }

    /// `true` when the assignment never leaves the base layer: every link
    /// has a single VC and every hop is assigned VC 0.  Designs before any
    /// deadlock handling look like this — the configuration the unsafe
    /// single-VC simulation baseline reproduces on purpose.
    pub fn is_single_vc(&self) -> bool {
        self.link_vcs.iter().all(|&vcs| vcs <= 1)
            && self
                .flow_vcs
                .iter()
                .all(|hops| hops.iter().all(|&vc| vc == 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::Route;
    use noc_topology::Channel;

    fn ring_with_escape() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..3).map(|i| topo.add_switch(format!("s{i}"))).collect();
        let links: Vec<LinkId> = (0..3)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 3], 1.0))
            .collect();
        let escape = topo.add_vc(links[1]).unwrap();
        let mut routes = RouteSet::new(2);
        routes.set_route(
            FlowId::from_index(0),
            Route::new(vec![Channel::base(links[0]), escape]),
        );
        // Flow 1 stays a same-switch (empty) route.
        (topo, routes)
    }

    #[test]
    fn snapshot_matches_the_design() {
        let (topo, routes) = ring_with_escape();
        let map = VcMap::from_design(&topo, &routes);
        assert_eq!(map.link_count(), 3);
        assert_eq!(map.flow_count(), 2);
        assert_eq!(map.link_vcs(LinkId::from_index(0)), 1);
        assert_eq!(map.link_vcs(LinkId::from_index(1)), 2);
        assert_eq!(map.total_channels(), 4);
        assert_eq!(map.extra_vcs(), topo.extra_vc_count());
        assert_eq!(map.assigned_vc(FlowId::from_index(0), 0), Some(0));
        assert_eq!(map.assigned_vc(FlowId::from_index(0), 1), Some(1));
        assert_eq!(map.assigned_vc(FlowId::from_index(0), 2), None);
        assert_eq!(map.flow_hops(FlowId::from_index(0)), 2);
        assert_eq!(map.flow_hops(FlowId::from_index(1)), 0);
        assert!(!map.is_single_vc());
    }

    #[test]
    fn out_of_range_queries_are_none_or_zero() {
        let (topo, routes) = ring_with_escape();
        let map = VcMap::from_design(&topo, &routes);
        assert_eq!(map.link_vcs(LinkId::from_index(99)), 0);
        assert_eq!(map.assigned_vc(FlowId::from_index(99), 0), None);
        assert_eq!(map.flow_hops(FlowId::from_index(99)), 0);
    }

    #[test]
    fn base_designs_are_single_vc() {
        let mut topo = Topology::new();
        let a = topo.add_switch("a");
        let b = topo.add_switch("b");
        let l = topo.add_link(a, b, 1.0);
        let mut routes = RouteSet::new(1);
        routes.set_route(FlowId::from_index(0), Route::from_links([l]));
        let map = VcMap::from_design(&topo, &routes);
        assert!(map.is_single_vc());
        assert_eq!(map.extra_vcs(), 0);
    }
}
