//! Summarizes a Chrome-trace telemetry artifact (written by any figure
//! binary's `--trace <path>` flag) as a per-phase wall-time breakdown.
//!
//! ```text
//! noc_profile summary <trace.json>
//! ```
//!
//! The table attributes the root `figure` span's wall time to the named
//! phase categories (`stage`, `sweep`, `removal`, `sim`, `jobs`,
//! `artifact`) by merged-interval self time, and lists the recorded
//! counters.  Exits 1 when the file is missing, is not a `noc_trace`
//! artifact, or its events are malformed — CI uses that as a
//! well-formedness smoke check on top of `ci/check_artifact.py`.

use noc_flow::TraceSummary;
use std::process::ExitCode;

const USAGE: &str = "usage: noc_profile summary <trace.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [command, path] if command == "summary" => path,
        [help] if help == "--help" || help == "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("noc_profile: {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match TraceSummary::parse(&text) {
        Ok(summary) => {
            print!("{}", summary.render_table());
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("noc_profile: {path}: {error}");
            ExitCode::FAILURE
        }
    }
}
