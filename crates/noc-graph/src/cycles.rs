//! Cycle search in directed graphs.
//!
//! The deadlock-removal algorithm (Algorithm 1 of the paper) repeatedly asks
//! for the *smallest* cycle of the channel dependency graph
//! (`GetSmallestCycle`).  The paper finds cycles by running a breadth-first
//! search from every vertex and checking whether the start vertex is
//! reached again; [`smallest_cycle`] implements exactly that strategy,
//! returning the shortest cycle over all start vertices.

use crate::digraph::{DiGraph, NodeId};
use crate::scc;
use std::collections::VecDeque;

/// Returns the shortest directed cycle through `start`, as the ordered list
/// of nodes `[start, ..., last]` such that every consecutive pair is an edge
/// and `last -> start` closes the cycle.  Returns `None` when no cycle passes
/// through `start`.
///
/// Runs a BFS from `start` over successors; the first time `start` is seen
/// again, the BFS tree gives a shortest closing path (this is the per-vertex
/// search the paper describes).
pub fn shortest_cycle_through<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Option<Vec<NodeId>> {
    if !graph.contains_node(start) {
        return None;
    }
    let n = graph.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        for succ in graph.successors(node) {
            if succ == start {
                // Reconstruct start -> ... -> node by walking the BFS tree
                // from node back to the root; the edge node -> start closes
                // the cycle.  A self-loop is the degenerate walk of length
                // zero (node == start), yielding the one-element cycle.
                let mut path = Vec::new();
                let mut cur = node;
                loop {
                    path.push(cur);
                    if cur == start {
                        break;
                    }
                    cur = parent[cur.index()].expect("BFS parents chain back to the start node");
                }
                path.reverse();
                return Some(path);
            }
            if !visited[succ.index()] {
                visited[succ.index()] = true;
                parent[succ.index()] = Some(node);
                queue.push_back(succ);
            }
        }
    }
    None
}

/// Returns the smallest directed cycle of the graph (fewest nodes), or
/// `None` if the graph is acyclic.
///
/// Ties are broken towards the cycle whose starting vertex has the smallest
/// node id, which makes the result deterministic.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, cycles};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
/// // Big cycle 0-1-2-3-4 and a chord creating the small cycle 2-3.
/// for i in 0..5 { g.add_edge(n[i], n[(i + 1) % 5], ()); }
/// g.add_edge(n[3], n[2], ());
/// let cycle = cycles::smallest_cycle(&g).unwrap();
/// assert_eq!(cycle.len(), 2);
/// ```
pub fn smallest_cycle<N, E>(graph: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    // Restrict the per-vertex BFS to nodes that sit inside a cyclic SCC;
    // everything else cannot be on a cycle.
    let comps = scc::cyclic_components(graph);
    let mut best: Option<Vec<NodeId>> = None;
    for comp in comps {
        for &node in &comp {
            if let Some(cycle) = shortest_cycle_through(graph, node) {
                let better = match &best {
                    None => true,
                    Some(b) => cycle.len() < b.len() || (cycle.len() == b.len() && cycle[0] < b[0]),
                };
                if better {
                    best = Some(cycle);
                }
            }
        }
    }
    best
}

/// Returns `true` if the graph contains no directed cycle.
pub fn is_acyclic<N, E>(graph: &DiGraph<N, E>) -> bool {
    !scc::has_cycle(graph)
}

/// Enumerates simple cycles of the graph, up to `limit` cycles.
///
/// This is a bounded DFS-based enumeration (each cycle is reported once,
/// rooted at its minimum node id).  It is used by ablation experiments and
/// diagnostics; the removal algorithm itself only ever needs the smallest
/// cycle.
pub fn enumerate_cycles<N, E>(graph: &DiGraph<N, E>, limit: usize) -> Vec<Vec<NodeId>> {
    let mut result = Vec::new();
    if limit == 0 {
        return result;
    }
    let n = graph.node_count();
    for root in graph.node_ids() {
        if result.len() >= limit {
            break;
        }
        // DFS that only visits nodes with id >= root, so each cycle is
        // discovered exactly once, rooted at its minimal node.
        let mut stack: Vec<(NodeId, Vec<NodeId>)> = vec![(root, vec![root])];
        let mut on_path = vec![false; n];
        // Iterative DFS with explicit path tracking; for modest graph sizes
        // (CDGs have at most a few thousand channels) this is sufficient.
        while let Some((node, path)) = stack.pop() {
            on_path.iter_mut().for_each(|v| *v = false);
            for p in &path {
                on_path[p.index()] = true;
            }
            for succ in graph.successors(node) {
                if succ == root && !path.is_empty() {
                    // Found a cycle rooted at `root`.
                    if path.len() > 1 || graph.has_edge(root, root) {
                        result.push(path.clone());
                        if result.len() >= limit {
                            return result;
                        }
                    } else if path.len() == 1 && succ == root && node == root {
                        // self-loop
                        result.push(vec![root]);
                        if result.len() >= limit {
                            return result;
                        }
                    }
                } else if succ > root && !on_path[succ.index()] {
                    let mut next_path = path.clone();
                    next_path.push(succ);
                    stack.push((succ, next_path));
                }
            }
        }
    }
    result
}

/// Returns the length (node count) of the smallest cycle, or `None` for an
/// acyclic graph.  Convenience wrapper over [`smallest_cycle`].
pub fn girth<N, E>(graph: &DiGraph<N, E>) -> Option<usize> {
    smallest_cycle(graph).map(|c| c.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> (DiGraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], ());
        }
        (g, nodes)
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert!(smallest_cycle(&g).is_none());
        assert!(is_acyclic(&g));
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn ring_cycle_is_found_in_order() {
        let (g, nodes) = ring(4);
        let cycle = smallest_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 4);
        // Consecutive elements must be connected, and last -> first closes it.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
        assert!(cycle.contains(&nodes[0]));
    }

    #[test]
    fn smallest_of_two_cycles_is_returned() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        // 5-cycle over 0..5 and a 2-cycle between 4 and 5.
        for i in 0..5 {
            g.add_edge(n[i], n[(i + 1) % 5], ());
        }
        g.add_edge(n[4], n[5], ());
        g.add_edge(n[5], n[4], ());
        let cycle = smallest_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&n[4]) && cycle.contains(&n[5]));
    }

    #[test]
    fn self_loop_is_a_cycle_of_length_one() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let cycle = smallest_cycle(&g).unwrap();
        assert_eq!(cycle, vec![a]);
        assert_eq!(girth(&g), Some(1));
    }

    #[test]
    fn shortest_cycle_through_specific_node() {
        let (g, nodes) = ring(5);
        for &n in &nodes {
            let c = shortest_cycle_through(&g, n).unwrap();
            assert_eq!(c.len(), 5);
            assert_eq!(c[0], n, "cycle must start at the requested node");
        }
    }

    #[test]
    fn shortest_cycle_through_self_loop_is_a_single_node() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(a, a, ());
        // The self-loop beats the 2-cycle from a's perspective.
        assert_eq!(shortest_cycle_through(&g, a).unwrap(), vec![a]);
        // b has no self-loop: its shortest cycle is the 2-cycle, with both
        // nodes reported exactly once.
        assert_eq!(shortest_cycle_through(&g, b).unwrap(), vec![b, a]);
    }

    #[test]
    fn shortest_cycle_through_two_cycle_has_no_duplicates() {
        let (g, nodes) = ring(2);
        for (i, &n) in nodes.iter().enumerate() {
            let c = shortest_cycle_through(&g, n).unwrap();
            assert_eq!(c.len(), 2, "2-cycle must have exactly two nodes");
            assert_eq!(c[0], n);
            assert_eq!(c[1], nodes[(i + 1) % 2]);
        }
    }

    #[test]
    fn shortest_cycle_through_prefers_short_closing_path() {
        // start -> a -> start (2-cycle) and start -> a -> b -> start
        // (3-cycle): BFS must return the 2-cycle.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(s, a, ());
        g.add_edge(a, b, ());
        g.add_edge(b, s, ());
        g.add_edge(a, s, ());
        assert_eq!(shortest_cycle_through(&g, s).unwrap(), vec![s, a]);
    }

    #[test]
    fn node_off_cycle_reports_none() {
        let (mut g, nodes) = ring(3);
        let extra = g.add_node(99);
        g.add_edge(nodes[0], extra, ());
        assert!(shortest_cycle_through(&g, extra).is_none());
        assert!(shortest_cycle_through(&g, nodes[0]).is_some());
    }

    #[test]
    fn enumerate_respects_limit() {
        let (g, _) = ring(3);
        assert_eq!(enumerate_cycles(&g, 0).len(), 0);
        assert_eq!(enumerate_cycles(&g, 10).len(), 1);
    }

    #[test]
    fn enumerate_finds_multiple_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[3], n[2], ());
        let cycles = enumerate_cycles(&g, 10);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn removed_edge_breaks_the_cycle() {
        let (mut g, nodes) = ring(4);
        let e = g.find_edge(nodes[3], nodes[0]).unwrap();
        g.remove_edge(e);
        assert!(smallest_cycle(&g).is_none());
    }

    #[test]
    fn girth_of_ring_equals_its_length() {
        for n in 2..8 {
            let (g, _) = ring(n);
            assert_eq!(girth(&g), Some(n));
        }
    }
}
