//! The on-disk resumable job store.
//!
//! A job directory holds three things:
//!
//! * `job.json` — the submitted spec plus its canonical digest, written
//!   atomically when the store is first opened;
//! * `tasks.ndjson` — the append-only completion log: one JSON record per
//!   finished task, flushed and synced as it lands, so a crash loses at
//!   most the record being written (a torn trailing line is tolerated and
//!   truncated away on reopen);
//! * `artifact.json` — the assembled artifact, committed by atomic
//!   temp-file + rename once every task has a record.
//!
//! Reopening the directory with the same spec replays the log; a rerun
//! computes only the tasks without records, and the committed artifact is
//! byte-identical to an uninterrupted run because both splice the same
//! recorded result text.

use crate::error::JobError;
use crate::spec::JobRequest;
use noc_flow::json::{write_atomic, JsonValue, ObjectWriter, RawJson};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One completed task, as recorded in `tasks.ndjson`.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// The task's index in the job's task list.
    pub index: usize,
    /// Digest of the owning job spec (records from a stale spec are
    /// ignored on load).
    pub digest: String,
    /// Wall time the task took, in milliseconds.
    pub elapsed_ms: u64,
    /// The task's result, as serialized JSON (spliced verbatim into the
    /// assembled artifact).
    pub result: String,
}

impl TaskRecord {
    fn to_line(&self) -> String {
        let mut out = String::new();
        ObjectWriter::new(&mut out)
            .field("index", &self.index)
            .field("digest", &self.digest)
            .field("elapsed_ms", &self.elapsed_ms)
            .field("result", &RawJson(&self.result))
            .finish();
        out
    }

    fn from_value(value: &JsonValue, raw_line: &str) -> Result<TaskRecord, String> {
        let index = value
            .get("index")
            .and_then(JsonValue::as_number)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or("missing integer field \"index\"")? as usize;
        let digest = value
            .get("digest")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field \"digest\"")?
            .to_string();
        let elapsed_ms = value
            .get("elapsed_ms")
            .and_then(JsonValue::as_number)
            .filter(|n| *n >= 0.0)
            .ok_or("missing numeric field \"elapsed_ms\"")? as u64;
        // The result is re-extracted as raw text so assembly can splice it
        // byte-identically: it is the last field, so it spans from its key
        // to the record's closing brace.
        let marker = "\"result\":";
        let at = raw_line.find(marker).ok_or("missing field \"result\"")?;
        let result = raw_line[at + marker.len()..raw_line.len() - 1].to_string();
        Ok(TaskRecord {
            index,
            digest,
            elapsed_ms,
            result,
        })
    }
}

/// A job directory opened for reading and appending — see the module docs
/// for the layout.
#[derive(Debug)]
pub struct JobStore {
    dir: PathBuf,
    spec: JobRequest,
    spec_digest: String,
    records: BTreeMap<usize, TaskRecord>,
    log: std::fs::File,
}

impl JobStore {
    /// Opens (creating if missing) the job directory for `spec`, replaying
    /// any existing completion log.
    ///
    /// A directory that already belongs to a *different* spec (digest
    /// mismatch in its `job.json`) is refused with
    /// [`JobError::SpecMismatch`] rather than silently mixed.  Records
    /// from a stale spec digest or an unparseable torn tail are dropped;
    /// a malformed record anywhere else in the log is reported as
    /// [`JobError::Corrupt`].
    pub fn open(dir: impl Into<PathBuf>, spec: JobRequest) -> Result<JobStore, JobError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| JobError::io(&dir, e))?;
        let spec_digest = spec.digest();

        let job_path = dir.join("job.json");
        match std::fs::read_to_string(&job_path) {
            Ok(existing) => {
                let value = JsonValue::parse(&existing)?;
                let found = value
                    .get("digest")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string();
                if found != spec_digest {
                    return Err(JobError::SpecMismatch {
                        dir,
                        expected: spec_digest,
                        found,
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut out = String::new();
                ObjectWriter::new(&mut out)
                    .field("spec", &RawJson(&spec.to_json_string()))
                    .field("digest", &spec_digest)
                    .field("canonical", &RawJson(&spec.canonical()))
                    .finish();
                out.push('\n');
                write_atomic(&job_path, out.as_bytes()).map_err(|e| JobError::io(&job_path, e))?;
            }
            Err(e) => return Err(JobError::io(&job_path, e)),
        }

        let log_path = dir.join("tasks.ndjson");
        let records = Self::replay_log(&log_path, &spec_digest)?;
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| JobError::io(&log_path, e))?;

        Ok(JobStore {
            dir,
            spec,
            spec_digest,
            records,
            log,
        })
    }

    /// Loads `tasks.ndjson`, tolerating exactly one torn trailing line (a
    /// crash mid-append), which is truncated away so the next append
    /// starts on a clean line boundary.
    fn replay_log(
        log_path: &Path,
        spec_digest: &str,
    ) -> Result<BTreeMap<usize, TaskRecord>, JobError> {
        let mut records = BTreeMap::new();
        let text = match std::fs::read_to_string(log_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(records),
            Err(e) => return Err(JobError::io(log_path, e)),
        };

        let mut good_bytes = 0usize;
        let mut lines: Vec<&str> = text.split_inclusive('\n').collect();
        let torn_tail = lines.last().is_some_and(|last| !last.ends_with('\n'));
        if torn_tail {
            lines.pop();
        }
        for (number, line) in lines.iter().enumerate() {
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() {
                good_bytes += line.len();
                continue;
            }
            let value = JsonValue::parse(trimmed).map_err(|e| JobError::Corrupt {
                path: log_path.to_path_buf(),
                line: number + 1,
                message: e.to_string(),
            })?;
            let record =
                TaskRecord::from_value(&value, trimmed).map_err(|message| JobError::Corrupt {
                    path: log_path.to_path_buf(),
                    line: number + 1,
                    message: message.to_string(),
                })?;
            // Stale records (from a since-changed spec) are forgotten, not
            // errors: the task simply reruns.  Later records win over
            // earlier ones with the same index.
            if record.digest == spec_digest {
                records.insert(record.index, record);
            }
            good_bytes += line.len();
        }
        if torn_tail || good_bytes < text.len() {
            // Drop the torn tail on disk too, so the reopened append
            // handle continues from a valid line boundary.
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(log_path)
                .map_err(|e| JobError::io(log_path, e))?;
            file.set_len(good_bytes as u64)
                .map_err(|e| JobError::io(log_path, e))?;
        }
        Ok(records)
    }

    /// The job directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The spec this store was opened with.
    pub fn spec(&self) -> &JobRequest {
        &self.spec
    }

    /// The spec's canonical digest (stamped on every record).
    pub fn spec_digest(&self) -> &str {
        &self.spec_digest
    }

    /// The replayed (plus newly recorded) completions, by task index.
    pub fn records(&self) -> &BTreeMap<usize, TaskRecord> {
        &self.records
    }

    /// Appends a completion record for task `index`, flushing and syncing
    /// it to disk before returning — after this, a crash cannot lose the
    /// task.
    pub fn record(
        &mut self,
        index: usize,
        elapsed_ms: u64,
        result: String,
    ) -> Result<(), JobError> {
        let record = TaskRecord {
            index,
            digest: self.spec_digest.clone(),
            elapsed_ms,
            result,
        };
        let mut line = record.to_line();
        line.push('\n');
        let log_path = self.dir.join("tasks.ndjson");
        self.log
            .write_all(line.as_bytes())
            .and_then(|()| self.log.flush())
            .and_then(|()| self.log.sync_data())
            .map_err(|e| JobError::io(&log_path, e))?;
        self.records.insert(index, record);
        Ok(())
    }

    /// Drops recorded completions whose index is outside the job's task
    /// list (e.g. after a source shrank its grid) so assembly never splices
    /// orphaned results.
    pub fn forget_beyond(&mut self, task_count: usize) {
        self.records.retain(|&index, _| index < task_count);
    }

    /// Path of the committed artifact.
    pub fn artifact_path(&self) -> PathBuf {
        self.dir.join("artifact.json")
    }

    /// The committed artifact text, if the job has finished before.
    pub fn committed_artifact(&self) -> Option<String> {
        std::fs::read_to_string(self.artifact_path()).ok()
    }

    /// Atomically commits the assembled artifact (temp file + rename in
    /// the job directory).
    pub fn commit_artifact(&self, text: &str) -> Result<(), JobError> {
        let path = self.artifact_path();
        write_atomic(&path, text.as_bytes()).map_err(|e| JobError::io(&path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "noc-jobs-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_survive_reopen() {
        let dir = temp_dir("reopen");
        let spec = JobRequest::new("fig_demo");
        let mut store = JobStore::open(&dir, spec.clone()).unwrap();
        store.record(0, 12, "{\"v\":1}".to_string()).unwrap();
        store.record(2, 3, "[1,2]".to_string()).unwrap();
        drop(store);

        let store = JobStore::open(&dir, spec).unwrap();
        assert_eq!(store.records().len(), 2);
        assert_eq!(store.records()[&0].result, "{\"v\":1}");
        assert_eq!(store.records()[&2].result, "[1,2]");
        assert_eq!(store.records()[&2].elapsed_ms, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = temp_dir("torn");
        let spec = JobRequest::new("fig_demo");
        let mut store = JobStore::open(&dir, spec.clone()).unwrap();
        store.record(0, 1, "1".to_string()).unwrap();
        drop(store);
        // Simulate a crash mid-append: half a record, no newline.
        let log = dir.join("tasks.ndjson");
        let mut file = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        file.write_all(b"{\"index\":1,\"dig").unwrap();
        drop(file);

        let mut store = JobStore::open(&dir, spec.clone()).unwrap();
        assert_eq!(store.records().len(), 1, "torn record is forgotten");
        // The file was truncated, so the next append forms a valid line.
        store.record(1, 2, "2".to_string()).unwrap();
        drop(store);
        let store = JobStore::open(&dir, spec).unwrap();
        assert_eq!(store.records().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_interior_record_is_an_error() {
        let dir = temp_dir("corrupt");
        let spec = JobRequest::new("fig_demo");
        let mut store = JobStore::open(&dir, spec.clone()).unwrap();
        store.record(0, 1, "1".to_string()).unwrap();
        store.record(1, 1, "2".to_string()).unwrap();
        drop(store);
        let log = dir.join("tasks.ndjson");
        let text = std::fs::read_to_string(&log).unwrap();
        let broken = text.replacen("{\"index\":0", "{\"index\":garbage", 1);
        std::fs::write(&log, broken).unwrap();

        assert!(matches!(
            JobStore::open(&dir, spec),
            Err(JobError::Corrupt { line: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_spec_is_refused_and_stale_records_forgotten() {
        let dir = temp_dir("mismatch");
        let spec = JobRequest::new("fig_demo");
        let mut store = JobStore::open(&dir, spec.clone()).unwrap();
        store.record(0, 1, "1".to_string()).unwrap();
        drop(store);

        let other =
            JobRequest::from_json("{\"figure\":\"fig_demo\",\"params\":{\"n\":1}}").unwrap();
        assert!(matches!(
            JobStore::open(&dir, other),
            Err(JobError::SpecMismatch { .. })
        ));

        // Same spec in a fresh directory whose log carries stale digests:
        // the records are skipped, not fatal.
        let dir2 = temp_dir("mismatch2");
        let mut store = JobStore::open(&dir2, spec.clone()).unwrap();
        store.record(0, 1, "1".to_string()).unwrap();
        drop(store);
        let log = dir2.join("tasks.ndjson");
        let text = std::fs::read_to_string(&log).unwrap();
        let stale = text.replace(&spec.digest(), &"0".repeat(64));
        std::fs::write(&log, stale).unwrap();
        let store = JobStore::open(&dir2, spec).unwrap();
        assert!(store.records().is_empty(), "stale records rerun");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn record_result_text_is_preserved_verbatim() {
        let dir = temp_dir("verbatim");
        let spec = JobRequest::new("fig_demo");
        let mut store = JobStore::open(&dir, spec.clone()).unwrap();
        // A result containing the "result" key and nested braces must
        // still round-trip exactly.
        let tricky = "{\"result\":{\"x\":[1,2,{\"y\":\"}\"}],\"mean\":0.30000000000000004}}";
        store.record(5, 7, tricky.to_string()).unwrap();
        drop(store);
        let store = JobStore::open(&dir, spec).unwrap();
        assert_eq!(store.records()[&5].result, tricky);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
