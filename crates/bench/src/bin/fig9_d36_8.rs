//! Reproduces Figure 9: extra VCs versus switch count for D36_8 (36 cores,
//! fan-out 8), resource ordering versus the deadlock-removal algorithm.

use noc_bench::{sweeps, vc_overhead_sweep};
use noc_topology::benchmarks::Benchmark;

fn main() {
    println!("# Figure 9 — D36_8: extra VCs vs. switch count");
    println!(
        "{:>12} {:>22} {:>22} {:>14}",
        "switches", "resource_ordering_vc", "deadlock_removal_vc", "cycles_broken"
    );
    for point in vc_overhead_sweep(Benchmark::D36x8, sweeps::FIG9_SWITCH_COUNTS) {
        println!(
            "{:>12} {:>22} {:>22} {:>14}",
            point.switch_count,
            point.resource_ordering_vcs,
            point.deadlock_removal_vcs,
            point.cycles_broken
        );
    }
}
