//! The communication graph `G(V, E)` (cores and flows) and the core-to-switch
//! attachment.

use crate::error::TopologyError;
use crate::ids::{CoreId, FlowId, SwitchId};

/// A core (IP block): processor, memory, accelerator, peripheral…
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    /// Human-readable name, e.g. `"arm0"` or `"sdram"`.
    pub name: String,
}

/// A communication flow between two cores (an edge of `G(V, E)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Core that produces the traffic.
    pub source: CoreId,
    /// Core that consumes the traffic.
    pub destination: CoreId,
    /// Average bandwidth demand in abstract MB/s units.
    pub bandwidth: f64,
}

/// The communication graph `G(V, E)` of Definition 2.
///
/// # Example
///
/// ```
/// use noc_topology::CommGraph;
///
/// let mut comm = CommGraph::new();
/// let cpu = comm.add_core("cpu");
/// let mem = comm.add_core("mem");
/// let f = comm.add_flow(cpu, mem, 400.0);
/// assert_eq!(comm.flow(f).unwrap().bandwidth, 400.0);
/// assert_eq!(comm.total_bandwidth(), 400.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommGraph {
    cores: Vec<Core>,
    flows: Vec<Flow>,
}

impl CommGraph {
    /// Creates an empty communication graph.
    pub fn new() -> Self {
        CommGraph::default()
    }

    /// Adds a core and returns its id.
    pub fn add_core(&mut self, name: impl Into<String>) -> CoreId {
        let id = CoreId::from_index(self.cores.len());
        self.cores.push(Core { name: name.into() });
        id
    }

    /// Adds a flow from `source` to `destination` with the given bandwidth
    /// demand and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either core does not exist.
    pub fn add_flow(&mut self, source: CoreId, destination: CoreId, bandwidth: f64) -> FlowId {
        assert!(
            source.index() < self.cores.len(),
            "source core out of bounds"
        );
        assert!(
            destination.index() < self.cores.len(),
            "destination core out of bounds"
        );
        let id = FlowId::from_index(self.flows.len());
        self.flows.push(Flow {
            source,
            destination,
            bandwidth,
        });
        id
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Returns the core payload, if the id is valid.
    pub fn core(&self, id: CoreId) -> Option<&Core> {
        self.cores.get(id.index())
    }

    /// Returns the flow payload, if the id is valid.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(id.index())
    }

    /// Iterates over `(CoreId, &Core)`.
    pub fn cores(&self) -> impl Iterator<Item = (CoreId, &Core)> + '_ {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, c)| (CoreId::from_index(i), c))
    }

    /// Iterates over `(FlowId, &Flow)`.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, &Flow)> + '_ {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| (FlowId::from_index(i), f))
    }

    /// Iterates over the flows leaving `core`.
    pub fn flows_from(&self, core: CoreId) -> impl Iterator<Item = (FlowId, &Flow)> + '_ {
        self.flows().filter(move |(_, f)| f.source == core)
    }

    /// Iterates over the flows arriving at `core`.
    pub fn flows_to(&self, core: CoreId) -> impl Iterator<Item = (FlowId, &Flow)> + '_ {
        self.flows().filter(move |(_, f)| f.destination == core)
    }

    /// Sum of the bandwidth demand of every flow.
    pub fn total_bandwidth(&self) -> f64 {
        self.flows.iter().map(|f| f.bandwidth).sum()
    }

    /// Communication affinity between two cores: the sum of flow bandwidths
    /// in either direction.  Used by the synthesis clusterer.
    pub fn affinity(&self, a: CoreId, b: CoreId) -> f64 {
        self.flows
            .iter()
            .filter(|f| {
                (f.source == a && f.destination == b) || (f.source == b && f.destination == a)
            })
            .map(|f| f.bandwidth)
            .sum()
    }
}

/// Attachment of cores to switches: each core connects to exactly one switch
/// through a local (core ↔ switch) port.
///
/// The paper's topology synthesis decides this mapping; the deadlock analysis
/// only needs it to translate a flow (core → core) into a switch-level path
/// (switch → switch).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreMap {
    attachment: Vec<Option<SwitchId>>,
}

impl CoreMap {
    /// Creates an empty mapping for `core_count` cores (all unmapped).
    pub fn new(core_count: usize) -> Self {
        CoreMap {
            attachment: vec![None; core_count],
        }
    }

    /// Maps `core` onto `switch`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownCore`] if the core index is out of
    /// range for this mapping.
    pub fn assign(&mut self, core: CoreId, switch: SwitchId) -> Result<(), TopologyError> {
        let slot = self
            .attachment
            .get_mut(core.index())
            .ok_or(TopologyError::UnknownCore(core))?;
        *slot = Some(switch);
        Ok(())
    }

    /// Returns the switch `core` is attached to, if mapped.
    pub fn switch_of(&self, core: CoreId) -> Option<SwitchId> {
        self.attachment.get(core.index()).copied().flatten()
    }

    /// Returns the switch `core` is attached to, or an error naming the core.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnmappedCore`] when the core has no attachment.
    pub fn require(&self, core: CoreId) -> Result<SwitchId, TopologyError> {
        self.switch_of(core)
            .ok_or(TopologyError::UnmappedCore(core))
    }

    /// Number of cores this mapping covers (mapped or not).
    pub fn core_count(&self) -> usize {
        self.attachment.len()
    }

    /// Returns `true` when every core has an attachment.
    pub fn is_complete(&self) -> bool {
        self.attachment.iter().all(|a| a.is_some())
    }

    /// Iterates over the cores attached to `switch`.
    pub fn cores_on(&self, switch: SwitchId) -> impl Iterator<Item = CoreId> + '_ {
        self.attachment
            .iter()
            .enumerate()
            .filter(move |(_, s)| **s == Some(switch))
            .map(|(i, _)| CoreId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CommGraph, Vec<CoreId>) {
        let mut g = CommGraph::new();
        let cores: Vec<_> = ["cpu", "dsp", "mem"]
            .iter()
            .map(|n| g.add_core(*n))
            .collect();
        g.add_flow(cores[0], cores[2], 100.0);
        g.add_flow(cores[1], cores[2], 50.0);
        g.add_flow(cores[2], cores[0], 25.0);
        (g, cores)
    }

    #[test]
    fn counts_and_lookup() {
        let (g, cores) = sample();
        assert_eq!(g.core_count(), 3);
        assert_eq!(g.flow_count(), 3);
        assert_eq!(g.core(cores[1]).unwrap().name, "dsp");
        assert_eq!(g.flows_from(cores[0]).count(), 1);
        assert_eq!(g.flows_to(cores[2]).count(), 2);
        assert_eq!(g.total_bandwidth(), 175.0);
    }

    #[test]
    fn affinity_sums_both_directions() {
        let (g, cores) = sample();
        assert_eq!(g.affinity(cores[0], cores[2]), 125.0);
        assert_eq!(g.affinity(cores[2], cores[0]), 125.0);
        assert_eq!(g.affinity(cores[0], cores[1]), 0.0);
    }

    #[test]
    fn core_map_assignment_and_queries() {
        let (g, cores) = sample();
        let mut map = CoreMap::new(g.core_count());
        assert!(!map.is_complete());
        let sw0 = SwitchId::from_index(0);
        let sw1 = SwitchId::from_index(1);
        map.assign(cores[0], sw0).unwrap();
        map.assign(cores[1], sw0).unwrap();
        map.assign(cores[2], sw1).unwrap();
        assert!(map.is_complete());
        assert_eq!(map.switch_of(cores[1]), Some(sw0));
        assert_eq!(map.require(cores[2]).unwrap(), sw1);
        assert_eq!(map.cores_on(sw0).count(), 2);
        assert_eq!(map.core_count(), 3);
    }

    #[test]
    fn core_map_errors() {
        let mut map = CoreMap::new(1);
        let bad = CoreId::from_index(5);
        assert_eq!(
            map.assign(bad, SwitchId::from_index(0)),
            Err(TopologyError::UnknownCore(bad))
        );
        assert_eq!(
            map.require(CoreId::from_index(0)),
            Err(TopologyError::UnmappedCore(CoreId::from_index(0)))
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flow_with_unknown_core_panics() {
        let mut g = CommGraph::new();
        let a = g.add_core("a");
        g.add_flow(a, CoreId::from_index(9), 1.0);
    }
}
